"""Tests for repro.bits: bit-length math and counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import (
    BitCounter,
    bit_length,
    ceil_log,
    ceil_log2,
    int_cost_bits,
    polylog_budget,
)


class TestCeilLog2:
    def test_exact_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(4) == 2
        assert ceil_log2(1024) == 10

    def test_between_powers_rounds_up(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1000) == 10

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestBitLength:
    def test_values(self):
        assert bit_length(0) == 1
        assert bit_length(1) == 1
        assert bit_length(2) == 2
        assert bit_length(255) == 8
        assert bit_length(-255) == 8


class TestIntCostBits:
    def test_with_universe_fixed_width(self):
        assert int_cost_bits(3, universe=16) == 4
        assert int_cost_bits(0, universe=16) == 4
        assert int_cost_bits(5, universe=2) == 1

    def test_without_universe_uses_own_length(self):
        assert int_cost_bits(255) == 8

    def test_universe_one_costs_one(self):
        assert int_cost_bits(0, universe=1) == 1

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            int_cost_bits(1, universe=0)


class TestPolylogBudget:
    def test_grows_polylog(self):
        b16 = polylog_budget(16)
        b256 = polylog_budget(256)
        assert b256 > b16
        # log 256 / log 16 = 2, cubed = 8.
        assert b256 == b16 * 8

    def test_scale_and_exponent(self):
        assert polylog_budget(16, exponent=1, scale=1) == 4
        assert polylog_budget(16, exponent=2, scale=2) == 32

    def test_rejects_tiny_universe(self):
        with pytest.raises(ValueError):
            polylog_budget(1)


class TestBitCounter:
    def test_accumulates(self):
        c = BitCounter()
        c.charge(10, label="x")
        c.charge(5, label="y")
        c.charge(1)
        assert c.total_bits == 16
        assert c.messages == 3
        assert c.by_label() == {"x": 10, "y": 5}

    def test_merge(self):
        a, b = BitCounter(), BitCounter()
        a.charge(3, label="x")
        b.charge(4, label="x")
        b.charge(2, label="z")
        a.merge(b)
        assert a.total_bits == 9
        assert a.by_label() == {"x": 7, "z": 2}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BitCounter().charge(-1)

    def test_by_label_returns_copy(self):
        c = BitCounter()
        c.charge(1, label="x")
        c.by_label()["x"] = 999
        assert c.by_label() == {"x": 1}


class TestCeilLog:
    def test_base2_matches_ceil_log2(self):
        for v in (1, 2, 3, 5, 16, 100):
            assert ceil_log(v) == ceil_log2(v)

    def test_other_base(self):
        assert ceil_log(9, base=3) == 2
        assert ceil_log(10, base=3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log(0)


@given(st.integers(min_value=1, max_value=10**9))
@settings(max_examples=200, deadline=None)
def test_ceil_log2_bracket_property(value):
    e = ceil_log2(value)
    assert 2**e >= value
    if e > 0:
        assert 2 ** (e - 1) < value
