"""Tests for BlindMatch: coin discipline and end-to-end behavior."""

import random

import pytest

from repro.core.blindmatch import BlindMatchConfig, BlindMatchNode
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import path, star
from repro.sim.context import NeighborView


def make_node(uid=1, tokens=(), seed=0):
    return BlindMatchNode(
        uid=uid,
        upper_n=32,
        initial_tokens=tuple(Token(t) for t in tokens),
        rng=random.Random(seed),
    )


class TestBehavior:
    def test_always_advertises_zero(self):
        node = make_node()
        for r in range(1, 50):
            assert node.advertise(r, (2, 3)) == 0

    def test_sender_coin_is_roughly_fair(self):
        node = make_node(seed=5)
        views = (NeighborView(uid=2, tag=0),)
        sends = 0
        for r in range(1, 2001):
            node.advertise(r, (2,))
            if node.propose(r, views) is not None:
                sends += 1
        assert 860 < sends < 1140

    def test_receiver_never_proposes(self):
        node = make_node(seed=0)
        views = (NeighborView(uid=2, tag=0),)
        for r in range(1, 100):
            node.advertise(r, (2,))
            target = node.propose(r, views)
            if not node._sender_this_round:
                assert target is None

    def test_no_neighbors_no_proposal(self):
        node = make_node()
        node.advertise(1, ())
        assert node.propose(1, ()) is None

    def test_target_uniform_over_neighbors(self):
        node = make_node(seed=9)
        uids = (2, 3, 4, 5)
        views = tuple(NeighborView(uid=u, tag=0) for u in uids)
        counts = {u: 0 for u in uids}
        for r in range(1, 4001):
            node.advertise(r, uids)
            target = node.propose(r, views)
            if target is not None:
                counts[target] += 1
        total = sum(counts.values())
        for u in uids:
            assert counts[u] > 0.15 * total  # ~25% each


class TestConfig:
    def test_rejects_nonpositive_exponent(self):
        with pytest.raises(ConfigurationError):
            BlindMatchConfig(transfer_error_exponent=0)

    def test_presets_distinct(self):
        assert (
            BlindMatchConfig.paper().transfer_error_exponent
            != BlindMatchConfig.practical().transfer_error_exponent
        )


class TestEndToEnd:
    def test_solves_on_static_path(self):
        inst = uniform_instance(n=8, k=2, seed=3)
        result = run_gossip(
            "blindmatch",
            StaticDynamicGraph(path(8)),
            inst,
            seed=3,
            max_rounds=20_000,
        )
        assert result.solved
        assert result.residual_potential == 0

    def test_solves_on_dynamic_star(self):
        # The hard regime: b=0 on a relabeled star every round.
        inst = uniform_instance(n=8, k=1, seed=1)
        result = run_gossip(
            "blindmatch",
            RelabelingAdversary(star(8), tau=1, seed=2),
            inst,
            seed=1,
            max_rounds=50_000,
        )
        assert result.solved

    def test_payloads_travel_intact(self):
        inst = uniform_instance(n=6, k=2, seed=5)
        result = run_gossip(
            "blindmatch",
            StaticDynamicGraph(path(6)),
            inst,
            seed=5,
            max_rounds=20_000,
        )
        assert result.solved
        expected = {
            t.token_id: t.payload
            for ts in inst.initial_tokens.values()
            for t in ts
        }
        for node in result.nodes.values():
            for token_id, payload in expected.items():
                assert node.token(token_id).payload == payload
