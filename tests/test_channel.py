"""Tests for the metered channel and its budget policies."""

import pytest

from repro.errors import (
    ChannelBudgetError,
    ChannelClosedError,
    ConfigurationError,
)
from repro.sim.channel import Channel, ChannelPolicy


def make_channel(max_tokens=1, max_bits=100, strict=True):
    policy = ChannelPolicy(
        max_tokens=max_tokens, max_control_bits=max_bits, strict=strict
    )
    return Channel(round_index=1, endpoint_a=10, endpoint_b=20, policy=policy)


class TestPolicy:
    def test_for_upper_n_scales(self):
        small = ChannelPolicy.for_upper_n(16)
        large = ChannelPolicy.for_upper_n(256)
        assert large.max_control_bits > small.max_control_bits

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ChannelPolicy(max_tokens=-1)
        with pytest.raises(ConfigurationError):
            ChannelPolicy(max_control_bits=-1)


class TestCharging:
    def test_bits_accumulate(self):
        ch = make_channel()
        ch.charge_bits(30, label="a")
        ch.charge_bits(20, label="b")
        assert ch.bits.total_bits == 50
        assert ch.bits.by_label() == {"a": 30, "b": 20}

    def test_tokens_accumulate(self):
        ch = make_channel(max_tokens=2)
        ch.charge_token()
        ch.charge_token()
        assert ch.tokens_moved == 2

    def test_bit_budget_enforced(self):
        ch = make_channel(max_bits=10)
        with pytest.raises(ChannelBudgetError):
            ch.charge_bits(11)

    def test_token_budget_enforced(self):
        ch = make_channel(max_tokens=1)
        ch.charge_token()
        with pytest.raises(ChannelBudgetError):
            ch.charge_token()

    def test_exact_budget_ok(self):
        ch = make_channel(max_bits=10)
        ch.charge_bits(10)
        assert ch.bits.total_bits == 10

    def test_non_strict_records_violation(self):
        ch = make_channel(max_bits=10, strict=False)
        ch.charge_bits(25)
        assert len(ch.violations) == 1
        assert "control bits exceeded" in ch.violations[0]


class TestLifecycle:
    def test_closed_channel_rejects_use(self):
        ch = make_channel()
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.charge_bits(1)
        with pytest.raises(ChannelClosedError):
            ch.charge_token()

    def test_is_open_flag(self):
        ch = make_channel()
        assert ch.is_open
        ch.close()
        assert not ch.is_open

    def test_peer_of(self):
        ch = make_channel()
        assert ch.peer_of(10) == 20
        assert ch.peer_of(20) == 10
        with pytest.raises(ConfigurationError):
            ch.peer_of(99)
