"""Tests for the chaos-hardened live layer.

Three strata:

* Socket-free: the :class:`RetryPolicy` backoff schedule is a pure
  function of (policy, seeded rng) — asserted by recording the
  injectable ``sleep`` instead of waiting; the error taxonomy's
  retryable/terminal split.
* ``net``-marked robustness: retry budgets against genuinely dead
  ports, suspect marking, and the kill-half-the-cluster degradation
  gate — a live run with half its peers killed mid-run must *complete*
  with a populated degraded report, not hang or raise.
* ``net``-marked equivalence: the chaos replay gates.  A recorded
  faulty simulation must replay match-equivalent against a cluster
  where :class:`ChaosModel` enacts the same seeded schedule physically
  — PeerServers killed and rebound (CrashChurn), radios asleep
  (SleepCycle), handshakes interdicted mid-round (LossyLinks).

Flake discipline: every retry delay in assertions goes through a
recording ``sleep`` or a sub-millisecond policy; liveness is driven by
events (dead endpoints fail instantly with ECONNREFUSED), never by
real-time sleeps.
"""

import random
import socket

import pytest

from repro.core.problem import uniform_instance
from repro.errors import ConfigurationError
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander
from repro.net import (
    ChaosModel,
    Coordinator,
    ProtocolError,
    RetryBudgetExceeded,
    RetryPolicy,
    TransportError,
    record_run,
    replay,
    request,
)
from repro.sim.faults import CrashChurn, LossyLinks, NoFaults, SleepCycle


def _dead_port() -> tuple[str, int]:
    """An address that was just bound and closed: connects are refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    host, port = probe.getsockname()
    probe.close()
    return host, port


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_exponential_schedule_without_rng(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, factor=2.0,
                             max_delay=0.5, jitter=0.5)
        assert [policy.delay(i) for i in range(1, 5)] == [
            0.1, 0.2, 0.4, 0.5  # capped at max_delay
        ]

    def test_jitter_is_deterministic_under_seeded_rng(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.5)
        a = random.Random(99)
        b = random.Random(99)
        schedule_a = [policy.delay(i, a) for i in range(1, 4)]
        schedule_b = [policy.delay(i, b) for i in range(1, 4)]
        assert schedule_a == schedule_b
        base = [policy.delay(i) for i in range(1, 4)]
        for jittered, bare in zip(schedule_a, base):
            assert bare <= jittered <= bare * 1.5

    @pytest.mark.net
    def test_request_retry_schedule_is_recorded_not_slept(self):
        """The whole retry loop runs through an injectable sleep."""
        host, port = _dead_port()
        policy = RetryPolicy(attempts=3, base_delay=0.05, factor=2.0,
                             jitter=0.5)
        slept: list[float] = []
        seen: list[tuple[str, int]] = []
        with pytest.raises(RetryBudgetExceeded) as info:
            request(
                host, port, {"op": "ping"},
                timeout=2.0,
                retry=policy,
                rng=random.Random(7),
                sleep=slept.append,
                on_retry=lambda exc, attempt, delay: seen.append(
                    (exc.kind, attempt)
                ),
                uid=5,
            )
        # attempts=3 -> two backoffs, both jittered from Random(7).
        rng = random.Random(7)
        expected = [policy.delay(1, rng), policy.delay(2, rng)]
        assert slept == expected
        assert seen == [("refused", 1), ("refused", 2)]
        err = info.value
        assert err.attempts == 3
        assert err.retryable is False
        assert err.peer == f"{host}:{port}"
        assert err.uid == 5
        assert isinstance(err.__cause__, TransportError)
        assert err.__cause__.kind == "refused"

    @pytest.mark.net
    def test_non_retryable_faults_skip_the_budget(self):
        """Frame corruption is terminal: no retries are attempted."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        host, port = silent.getsockname()

        import threading

        def corrupt_once():
            conn, _ = silent.accept()
            from repro.net.framing import HEADER

            conn.recv(4096)
            conn.sendall(HEADER.pack(2 ** 30))  # absurd length prefix
            conn.close()

        thread = threading.Thread(target=corrupt_once, daemon=True)
        thread.start()
        slept: list[float] = []
        try:
            with pytest.raises(TransportError) as info:
                request(host, port, {"op": "ping"}, timeout=2.0,
                        retry=RetryPolicy(attempts=5), sleep=slept.append)
            assert info.value.kind == "frame"
            assert not isinstance(info.value, RetryBudgetExceeded)
            assert slept == []  # budget never consulted
        finally:
            silent.close()
            thread.join(timeout=2.0)


class TestChaosModelConstruction:
    def test_rejects_null_fault(self):
        with pytest.raises(ConfigurationError):
            ChaosModel(NoFaults(n=4))

    def test_enactment_mapping_lives_with_the_models(self):
        assert CrashChurn(4, 0).chaos_enactment == "kill"
        assert SleepCycle(4, 0).chaos_enactment == "sleep"
        assert LossyLinks(4, 0).chaos_enactment == "drop"
        assert NoFaults(4).chaos_enactment == "none"

    def test_coordinator_rejects_fault_plus_chaos(self):
        with pytest.raises(ConfigurationError):
            Coordinator(
                "sharedbit",
                StaticDynamicGraph(expander(n=8, degree=4, seed=2)),
                uniform_instance(n=8, k=2, seed=1),
                seed=1,
                fault={"kind": "lossy"},
                chaos={"kind": "churn"},
            )


#: A tiny, fast policy for tests: dead loopback endpoints fail with an
#: instant ECONNREFUSED, so sub-millisecond backoffs keep suspect
#: discovery deterministic and quick without real waiting.
FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.001, factor=2.0,
                         max_delay=0.002, jitter=0.0)

GRAPH_SEED = 2
N = 8


def _graph_factory():
    return StaticDynamicGraph(expander(n=N, degree=4, seed=GRAPH_SEED))


def _coordinator(**opts):
    return Coordinator(
        "sharedbit",
        _graph_factory(),
        uniform_instance(n=N, k=3, seed=11),
        seed=5,
        retry=FAST_RETRY,
        request_timeout=2.0,
        **opts,
    )


@pytest.mark.net
class TestGracefulDegradation:
    def test_kill_half_the_cluster_completes_degraded(self):
        """Acceptance gate: half the peers die mid-run; the run must
        complete over the surviving quorum with suspects and
        degraded-round counts populated — no hang, no raise."""
        coord = _coordinator(termination_every=0)
        kill_at = 3
        victims = list(range(0, N, 2))
        original = coord.run_round

        def chaotic_round(rnd):
            if rnd == kill_at:
                for vertex in victims:
                    coord.servers[vertex].kill()
            original(rnd)

        coord.run_round = chaotic_round
        with coord:
            report = coord.run(max_rounds=10)
        assert report.rounds == 10
        assert len(report.suspects) == len(victims)
        dead_uids = {coord.servers[v].uid for v in victims}
        assert set(report.suspects) == dead_uids
        assert all(marked >= kill_at for marked in report.suspects.values())
        assert report.suspect_events == len(victims)
        assert report.degraded_rounds > 0
        assert report.degraded
        assert report.retries > 0
        # Survivors kept gossiping among themselves after the massacre.
        surviving_rounds = report.match_stream[kill_at:]
        assert any(matches for matches in surviving_rounds)
        for matches in surviving_rounds:
            for initiator, responder in matches:
                assert initiator not in dead_uids
                assert responder not in dead_uids
        # The final report still includes every node's storage (the
        # dead phones' disks survived, exactly like the simulator).
        assert len(report.final_tokens) == N

    def test_suspect_rejoins_after_revival(self):
        """A suspected peer that comes back is probed, re-admitted, and
        counted as a rejoin; the suspect set drains."""
        coord = _coordinator(termination_every=0)
        victim = 0
        original = coord.run_round

        def chaotic_round(rnd):
            if rnd == 2:
                coord.servers[victim].kill()
            if rnd == 5:
                coord.servers[victim].revive()
            original(rnd)

        coord.run_round = chaotic_round
        with coord:
            report = coord.run(max_rounds=8)
        victim_uid = coord.servers[victim].uid
        assert report.suspect_events >= 1
        assert report.rejoins >= 1
        assert victim_uid not in report.suspects
        # After rejoin the victim participates again.
        late_participants = {
            uid
            for matches in report.match_stream[5:]
            for pair in matches
            for uid in pair
        }
        assert report.rounds == 8
        # (participation is stochastic; the hard assertions are above)
        assert isinstance(late_participants, set)

    def test_all_nodes_dead_is_not_vacuously_solved(self):
        coord = _coordinator()
        with coord:
            coord.run_round(1)
            for vertex in range(N):
                coord.servers[vertex].kill()
            # One more round by hand; _solved must be False on an empty
            # quorum rather than vacuously True.
            coord.run_round(2)
            assert coord.suspects  # everyone suspected
            assert coord._solved() is False


@pytest.mark.net
class TestChaosReplayEquivalence:
    """The acceptance gates: recorded faulty sims replay match-
    equivalent against clusters experiencing the *actual* failures."""

    @pytest.mark.parametrize("reset_tokens", [False, True])
    def test_crash_churn_chaos_replay(self, reset_tokens):
        fault = {
            "kind": "churn",
            "cycle": 8,
            "crash_prob": 0.5,
            "min_outage": 2,
            "max_outage": 4,
            "reset_tokens": reset_tokens,
        }
        record = record_run(
            "sharedbit",
            _graph_factory(),
            uniform_instance(n=N, k=3, seed=11),
            seed=5,
            max_rounds=24,
            fault=fault,
        )
        report = replay(record, chaos=True, retry=FAST_RETRY)
        assert report.equivalent, "\n".join(report.divergences)
        # The failures were real: endpoints actually went down and came
        # back at the seed-derived rounds.
        assert report.live.chaos_kills > 0
        assert report.live.chaos_revives > 0
        assert not report.live.suspects  # planned chaos is not suspicion

    def test_sleep_cycle_chaos_replay(self):
        record = record_run(
            "sharedbit",
            _graph_factory(),
            uniform_instance(n=N, k=3, seed=11),
            seed=5,
            max_rounds=16,
            fault={"kind": "sleep", "period": 4, "duty": 2},
        )
        report = replay(record, chaos=True, retry=FAST_RETRY)
        assert report.equivalent, "\n".join(report.divergences)

    def test_lossy_links_chaos_replay_drops_for_real(self):
        record = record_run(
            "sharedbit",
            _graph_factory(),
            uniform_instance(n=N, k=3, seed=11),
            seed=5,
            max_rounds=16,
            fault={"kind": "lossy", "drop_prob": 0.4},
        )
        report = replay(record, chaos=True, retry=FAST_RETRY)
        assert report.equivalent, "\n".join(report.divergences)
        # The interdicted handshakes really failed at the socket level
        # and were charged as dropped connections.
        assert report.live.trace.total_dropped_connections > 0

    def test_logical_fault_replay_also_equivalent(self):
        """The same recording masked logically (no chaos) matches too —
        pinning that physical enactment changes nothing observable."""
        record = record_run(
            "sharedbit",
            _graph_factory(),
            uniform_instance(n=N, k=3, seed=11),
            seed=5,
            max_rounds=16,
            fault={"kind": "churn", "cycle": 8, "crash_prob": 0.5,
                   "min_outage": 2, "max_outage": 4},
        )
        logical = replay(record, retry=FAST_RETRY)
        assert logical.equivalent, "\n".join(logical.divergences)

    def test_chaos_replay_requires_fault(self):
        record = record_run(
            "sharedbit",
            _graph_factory(),
            uniform_instance(n=N, k=3, seed=11),
            seed=5,
            max_rounds=8,
        )
        with pytest.raises(ConfigurationError):
            replay(record, chaos=True)

    def test_record_run_rejects_model_instances(self):
        with pytest.raises(ConfigurationError):
            record_run(
                "sharedbit",
                _graph_factory(),
                uniform_instance(n=N, k=3, seed=11),
                seed=5,
                fault=CrashChurn(N, 5),
            )


@pytest.mark.net
class TestServerRobustness:
    def test_round_ops_are_idempotent_under_retry(self):
        """A retried advertise/resolve must not re-run protocol hooks
        or re-draw acceptance randomness: the cached reply is served."""
        from repro.core.runner import build_nodes
        from repro.net import PeerServer as _PeerServer

        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("sharedbit", instance, seed=3)
        server = _PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                             seed=3, b=1)
        first = server.handle({"op": "advertise", "round": 1,
                               "neighbors": [2, 3]})
        again = server.handle({"op": "advertise", "round": 1,
                               "neighbors": [2, 3]})
        assert first == again
        server.handle({"op": "proposal", "round": 1, "from": 9})
        server.handle({"op": "proposal", "round": 1, "from": 9})  # dup
        server.handle({"op": "proposal", "round": 1, "from": 4})
        verdict = server.handle({"op": "resolve", "round": 1})
        assert verdict["senders"] == 2  # the duplicate did not count
        assert server.handle({"op": "resolve", "round": 1}) == verdict

    def test_kill_then_revive_rebinds_same_port(self):
        from repro.core.runner import build_nodes
        from repro.net import PeerServer as _PeerServer

        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("sharedbit", instance, seed=3)
        server = _PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                             seed=3, b=1).start()
        host, port = server.address
        assert request(host, port, {"op": "ping"})["ok"] is True
        server.kill()
        assert server.dead
        with pytest.raises(TransportError):
            request(host, port, {"op": "ping"}, timeout=1.0)
        server.revive()
        try:
            assert not server.dead
            assert server.address == (host, port)
            assert request(host, port, {"op": "ping"})["ok"] is True
            assert server.stats["kills"] == 1
            assert server.stats["revives"] == 1
        finally:
            server.stop()

    def test_asleep_server_hangs_up_without_reply(self):
        from repro.core.runner import build_nodes
        from repro.net import PeerServer as _PeerServer

        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("sharedbit", instance, seed=3)
        server = _PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                             seed=3, b=1).start()
        host, port = server.address
        try:
            server.asleep = True
            with pytest.raises(TransportError) as info:
                request(host, port, {"op": "ping"}, timeout=1.0)
            # The abrupt hangup surfaces as a clean FIN ("eof") or an
            # RST ("reset") depending on whether our frame was still
            # unread at close time; both are retryable radio silence.
            assert info.value.kind in ("eof", "reset")
            assert info.value.retryable
            server.asleep = False
            assert request(host, port, {"op": "ping"})["ok"] is True
        finally:
            server.stop()

    def test_failed_proposal_delivery_degrades_not_raises(self):
        """A proposer whose target's endpoint is gone reports
        ``delivered: false`` instead of failing the round."""
        from repro.core.runner import build_nodes
        from repro.net import PeerEntry as _PeerEntry
        from repro.net import PeerServer as _PeerServer

        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("blindmatch", instance, seed=3)
        server = _PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                             seed=3, b=1, retry=FAST_RETRY).start()
        dead_host, dead_port = _dead_port()
        target_uid = instance.uid_of(1)
        server.table.upsert(_PeerEntry(uid=target_uid, host=dead_host,
                                       port=dead_port, vertex=1,
                                       last_seen=0.0))
        try:
            # Blindmatch flips a seeded sender/listener coin in its
            # scan stage; on the first sender round its only visible
            # neighbor — the dead one — must be the target.  Seeded, so
            # deterministic and bounded.
            for rnd in range(1, 65):
                server.handle({"op": "advertise", "round": rnd,
                               "neighbors": [target_uid]})
                reply = server.handle(
                    {"op": "propose", "round": rnd,
                     "views": [[target_uid, 1]]}
                )
                if reply["target"] is not None:
                    assert reply["target"] == target_uid
                    assert reply["delivered"] is False
                    assert "delivery_error" in reply
                    break
            else:  # pragma: no cover - sender coin can't miss 64 times
                pytest.fail("node never entered a sender round")
            assert server.stats["failed_deliveries"] >= 1
        finally:
            server.stop()
