"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "sharedbit"]
        )
        assert args.algorithm == "sharedbit"
        assert args.graph == "expander"
        assert args.tau == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope"])


class TestCommands:
    def test_run_sharedbit(self, capsys):
        code = main(
            [
                "run", "--algorithm", "sharedbit", "--graph", "cycle",
                "--n", "10", "--k", "2", "--seed", "1",
                "--max-rounds", "20000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solved" in out
        assert "sharedbit on cycle" in out

    def test_run_blindmatch_dynamic(self, capsys):
        code = main(
            [
                "run", "--algorithm", "blindmatch", "--graph", "path",
                "--n", "8", "--k", "1", "--tau", "1", "--seed", "2",
                "--max-rounds", "50000",
            ]
        )
        assert code == 0
        assert "tau=1" in capsys.readouterr().out

    def test_run_failure_exit_code(self, capsys):
        code = main(
            [
                "run", "--algorithm", "blindmatch", "--graph", "path",
                "--n", "12", "--k", "2", "--seed", "1",
                "--max-rounds", "3",
            ]
        )
        assert code == 1
        assert "NOT solved" in capsys.readouterr().out

    def test_scenario_command(self, capsys):
        code = main(
            [
                "scenario", "--name", "disaster", "--algorithm",
                "sharedbit", "--seed", "3", "--max-rounds", "60000",
            ]
        )
        assert code == 0
        assert "disaster" in capsys.readouterr().out
