"""Tests for graph conductance and the conductance-vs-expansion contrast."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.metrics import (
    conductance_estimate,
    conductance_exact,
    conductance_of_set,
    cut_edges,
    vertex_expansion_exact,
)
from repro.graphs.topologies import complete, cycle, path, star


class TestCutEdges:
    def test_path_prefix(self):
        g = path(5).graph
        assert cut_edges(g, {0, 1}) == 1

    def test_star_leaves(self):
        g = star(6).graph
        assert cut_edges(g, {1, 2, 3}) == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cut_edges(path(3).graph, set())


class TestConductanceOfSet:
    def test_star_single_leaf(self):
        g = star(6).graph
        # S = {leaf}: cut 1, vol(S) 1 -> phi(S) = 1.
        assert conductance_of_set(g, {1}) == pytest.approx(1.0)

    def test_star_half_leaves(self):
        g = star(9).graph  # 8 leaves, hub degree 8, total volume 16
        # S = 4 leaves: cut 4, vol(S) 4, vol rest 12 -> 4/4 = 1.
        assert conductance_of_set(g, {1, 2, 3, 4}) == pytest.approx(1.0)

    def test_cycle_half(self):
        g = cycle(8).graph
        # Half the cycle: cut 2, vol 8 -> 1/4.
        assert conductance_of_set(g, set(range(4))) == pytest.approx(0.25)

    def test_full_set_rejected(self):
        with pytest.raises(ConfigurationError):
            conductance_of_set(path(4).graph, {0, 1, 2, 3})


class TestExactAndEstimate:
    def test_star_conductance_is_constant(self):
        # Every cut of a star has phi(S) >= 1/2-ish; exact phi(star) does
        # not vanish with n — unlike alpha = Theta(1/n).
        for n in (6, 8, 10):
            phi = conductance_exact(star(n).graph)
            assert phi >= 0.4

    def test_cycle_conductance_small(self):
        assert conductance_exact(cycle(12).graph) == pytest.approx(2 / 12)

    def test_complete_conductance_large(self):
        assert conductance_exact(complete(6).graph) > 0.5

    def test_estimate_upper_bounds_exact(self):
        for topo in (star(10), cycle(10), path(10)):
            exact = conductance_exact(topo.graph)
            est = conductance_estimate(topo.graph, seed=1)
            assert est >= exact - 1e-12
            # Heuristic cuts find the bottleneck on these families.
            assert est == pytest.approx(exact, rel=0.5)

    def test_size_guard(self):
        with pytest.raises(ConfigurationError):
            conductance_exact(cycle(40).graph)


class TestSeparation:
    def test_star_separates_conductance_from_expansion(self):
        """The family behind the paper's related-work claim: stars have
        constant conductance but vanishing vertex expansion, and in the
        mobile telephone model spreading tracks expansion, not
        conductance (measured in benchmarks/bench_conductance.py)."""
        small, large = star(8), star(16)
        phi_small = conductance_exact(small.graph)
        phi_large = conductance_exact(large.graph)
        alpha_small = vertex_expansion_exact(small.graph)
        alpha_large = vertex_expansion_exact(large.graph)
        # Conductance stays put; expansion halves when n doubles.
        assert phi_large == pytest.approx(phi_small, rel=0.3)
        assert alpha_large == pytest.approx(alpha_small / 2, rel=0.1)
