"""Tests for CrowdedBin: spelling, upgrades, and end-to-end gossip."""

import random

import pytest

from repro.core.crowdedbin import (
    CrowdedBinConfig,
    CrowdedBinNode,
    configuration_report,
)
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import cycle, expander, path

CFG = CrowdedBinConfig.practical()


def make_node(uid=1, tokens=(), upper_n=16, seed=0, config=CFG):
    return CrowdedBinNode(
        uid=uid,
        upper_n=upper_n,
        initial_tokens=tuple(Token(t) for t in tokens),
        rng=random.Random(seed),
        config=config,
    )


class TestInitialization:
    def test_token_owner_gets_tag_and_bins(self):
        node = make_node(tokens=(5,))
        tags = node.owned_tags()
        assert len(tags) == 1
        tag = next(iter(tags))
        assert 1 <= tag <= node.schedule.max_tag
        # The tag is thrown into one bin per instance.
        for instance in range(1, node.schedule.num_instances + 1):
            in_some_bin = any(
                tag in node.tags_in_bin(instance, b)
                for b in range(node.schedule.bins(instance))
            )
            assert in_some_bin

    def test_multiple_tokens_distinct_tags(self):
        node = make_node(tokens=(3, 5, 9))
        assert len(node.owned_tags()) == 3

    def test_tokenless_node_starts_empty(self):
        node = make_node()
        assert node.owned_tags() == frozenset()
        assert node.estimate == 2  # instance 1 -> k_1 = 2

    def test_estimate_starts_at_instance_one(self):
        assert make_node().est == 1


class TestUpgrades:
    def test_crowded_bin_triggers_upgrade(self):
        node = make_node()
        key = (1, 0)
        threshold = node.schedule.crowded_threshold
        node._pending_tags[key] = set(range(1, threshold + 1))
        node._fold_pending(1, 0)
        assert node.est == 2

    def test_below_threshold_no_upgrade(self):
        node = make_node()
        node._pending_tags[(1, 0)] = set(range(1, 3))
        node._fold_pending(1, 0)
        assert node.est == 1

    def test_crowding_in_other_instance_ignored(self):
        node = make_node()
        threshold = node.schedule.crowded_threshold
        node._pending_tags[(2, 0)] = set(range(1, threshold + 1))
        node._fold_pending(2, 0)
        assert node.est == 1

    def test_estimate_capped(self):
        node = make_node()
        node.est = node.schedule.num_instances
        threshold = node.schedule.crowded_threshold
        node._pending_tags[(node.est, 0)] = set(range(1, threshold + 1))
        node._fold_pending(node.est, 0)
        assert node.est == node.schedule.num_instances

    def test_activity_jumps_estimate(self):
        from repro.sim.context import NeighborView

        node = make_node()
        # Find a real round belonging to instance 3.
        r = next(
            r for r in range(1, 100)
            if node.schedule.locate(r).instance == 3
        )
        node.advertise(r, (2,))
        node.propose(r, (NeighborView(uid=2, tag=1),))
        assert node.est == 3

    def test_activity_below_estimate_ignored(self):
        from repro.sim.context import NeighborView

        node = make_node()
        node.est = 2
        r = next(
            r for r in range(1, 100)
            if node.schedule.locate(r).instance == 1
        )
        node.advertise(r, (2,))
        node.propose(r, (NeighborView(uid=2, tag=1),))
        assert node.est == 2


class TestSpelling:
    def test_two_neighbors_exchange_tags_via_bits(self):
        """Drive two adjacent nodes by hand through instance-1 rounds."""
        from repro.sim.context import NeighborView

        a = make_node(uid=1, tokens=(1,), seed=1)
        b = make_node(uid=2, seed=2)
        schedule = a.schedule
        tag_a = next(iter(a.owned_tags()))
        bin_a = next(
            bin_index
            for bin_index in range(schedule.bins(1))
            if tag_a in a.tags_in_bin(1, bin_index)
        )
        # Walk both nodes through one full phase of instance 1.
        plen = schedule.phase_len(1)
        for t in range(1, plen + 1):
            r = schedule.log_n * (t - 1) + 1  # instance 1's t-th real round
            bit_a = a.advertise(r, (2,))
            bit_b = b.advertise(r, (1,))
            a.propose(r, (NeighborView(uid=2, tag=bit_b),))
            b.propose(r, (NeighborView(uid=1, tag=bit_a),))
        assert tag_a in b.tags_in_bin(1, bin_a)

    def test_nonparticipant_advertises_zero(self):
        node = make_node(tokens=(3,))
        node.est = 2  # instance 1 rounds are not its instance
        r = next(
            r for r in range(1, 50)
            if node.schedule.locate(r).instance == 1
        )
        assert node.advertise(r, ()) == 0


class TestEndToEnd:
    def test_solves_small_expander(self):
        inst = uniform_instance(n=16, k=2, seed=7)
        result = run_gossip(
            "crowdedbin",
            StaticDynamicGraph(expander(16, 4, seed=1)),
            inst,
            seed=7,
            max_rounds=100_000,
            config=CFG,
            termination_every=8,
        )
        assert result.solved
        assert result.residual_potential == 0

    def test_solves_cycle(self):
        inst = uniform_instance(n=12, k=3, seed=2)
        result = run_gossip(
            "crowdedbin",
            StaticDynamicGraph(cycle(12)),
            inst,
            seed=2,
            max_rounds=200_000,
            config=CFG,
            termination_every=8,
        )
        assert result.solved

    def test_upgrade_path_with_tight_gamma(self):
        # gamma=1: threshold = log N, so k=12 must overflow instance 1.
        config = CrowdedBinConfig(beta=2, gamma=1)
        inst = uniform_instance(n=32, k=12, seed=7)
        result = run_gossip(
            "crowdedbin",
            StaticDynamicGraph(expander(32, 4, seed=1)),
            inst,
            seed=7,
            max_rounds=500_000,
            config=config,
            termination_every=32,
            trace_sample_every=1024,
        )
        assert result.solved
        assert all(node.est > 1 for node in result.nodes.values())

    def test_rejects_dynamic_topology(self):
        inst = uniform_instance(n=8, k=2, seed=1)
        with pytest.raises(ConfigurationError):
            run_gossip(
                "crowdedbin",
                RelabelingAdversary(path(8), tau=1, seed=1),
                inst,
                seed=1,
                max_rounds=100,
            )

    def test_configuration_report_good(self):
        inst = uniform_instance(n=16, k=3, seed=11)
        from repro.core.runner import build_nodes

        nodes = build_nodes("crowdedbin", inst, seed=11, config=CFG)
        report = configuration_report(
            nodes, CFG.schedule(inst.upper_n), inst.k
        )
        assert report["unique_tags"]
        assert report["target_instance"] is not None


class TestConfig:
    def test_paper_preset_satisfies_lemma_6_5(self):
        cfg = CrowdedBinConfig.paper()
        # c=1: beta >= c+3 and gamma >= 3c+9.
        assert cfg.beta >= 4
        assert cfg.gamma >= 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdedBinConfig(beta=0, gamma=1)
