"""Tests for spread curves and sparklines."""

import pytest

from repro.analysis.curves import (
    SpreadCurve,
    sparkline,
    spread_curve_from_trace,
)
from repro.errors import ConfigurationError
from repro.sim.trace import RoundRecord, Trace


def make_trace(points):
    trace = Trace()
    for round_index, mean in points:
        trace.record(
            RoundRecord(
                round_index=round_index,
                proposals=0,
                connections=0,
                tokens_moved=0,
                control_bits=0,
                gauges={"coverage": (0, mean)},
            )
        )
    return trace


class TestSpreadCurve:
    def test_quantiles(self):
        curve = SpreadCurve(points=((1, 0.2), (5, 0.6), (9, 1.0)), k=4)
        assert curve.rounds_to_fraction(0.5) == 5
        assert curve.rounds_to_fraction(1.0) == 9
        assert curve.rounds_to_fraction(0.1) == 1

    def test_unreached_fraction_is_none(self):
        curve = SpreadCurve(points=((1, 0.2),), k=4)
        assert curve.rounds_to_fraction(0.9) is None

    def test_summary(self):
        curve = SpreadCurve(points=((2, 0.5), (4, 0.95), (6, 1.0)), k=2)
        assert curve.summary() == {"t50": 2, "t90": 4, "t100": 6}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpreadCurve(points=(), k=1)
        with pytest.raises(ConfigurationError):
            SpreadCurve(points=((5, 0.1), (1, 0.2)), k=1)
        curve = SpreadCurve(points=((1, 0.5),), k=1)
        with pytest.raises(ConfigurationError):
            curve.rounds_to_fraction(0.0)


class TestFromTrace:
    def test_normalizes_by_k(self):
        trace = make_trace([(1, 1.0), (2, 2.0), (3, 4.0)])
        curve = spread_curve_from_trace(trace, k=4)
        assert curve.points == ((1, 0.25), (2, 0.5), (3, 1.0))

    def test_caps_at_one(self):
        trace = make_trace([(1, 5.0)])
        curve = spread_curve_from_trace(trace, k=4)
        assert curve.points[0][1] == 1.0

    def test_missing_gauge_rejected(self):
        with pytest.raises(ConfigurationError):
            spread_curve_from_trace(Trace(), k=2)


class TestSparkline:
    def test_width_and_levels(self):
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert len(line) == 3
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_downsamples_long_series(self):
        line = sparkline([i / 99 for i in range(100)], width=10)
        assert len(line) == 10
        # Monotone input stays monotone after bucketing.
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)

    def test_short_series_kept(self):
        assert len(sparkline([0.3, 0.7], width=40)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([1.5])
        with pytest.raises(ConfigurationError):
            sparkline([0.5], width=0)
