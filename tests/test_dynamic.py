"""Tests for dynamic graphs: stability, determinism, connectivity."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.fastpath import check_grid_identity
from repro.graphs.spatial import (
    PointIndex,
    disk_edges,
    disk_edges_blocked,
    disk_edges_grid,
    nearest_pair,
)
from repro.graphs.dynamic import (
    TAU_INFINITY,
    GeometricMobilityGraph,
    PeriodicRewireGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
    dynamic_expansion_estimate,
    dynamic_max_degree,
)
from repro.graphs.topologies import cycle, double_star, path, star


def edges_at(dg, r):
    return frozenset(map(tuple, map(sorted, dg.graph_at(r).edges)))


class TestStaticDynamicGraph:
    def test_same_graph_every_round(self):
        dg = StaticDynamicGraph(cycle(8))
        assert edges_at(dg, 1) == edges_at(dg, 1000)

    def test_tau_is_infinity(self):
        assert StaticDynamicGraph(cycle(8)).tau == TAU_INFINITY

    def test_epoch_always_zero(self):
        dg = StaticDynamicGraph(cycle(8))
        assert dg.epoch_of(1) == dg.epoch_of(999) == 0

    def test_rounds_one_indexed(self):
        dg = StaticDynamicGraph(cycle(8))
        with pytest.raises(ConfigurationError):
            dg.graph_at(0)


class TestRelabelingAdversary:
    def test_preserves_shape(self):
        topo = double_star(4)
        dg = RelabelingAdversary(topo, tau=1, seed=5)
        for r in (1, 2, 3):
            g = dg.graph_at(r)
            assert nx.is_isomorphic(g, topo.graph)

    def test_changes_at_tau_one(self):
        # A path's relabeled edge set pins down the permutation (up to
        # reversal), so distinct epochs almost surely differ.
        dg = RelabelingAdversary(path(10), tau=1, seed=5)
        assert edges_at(dg, 1) != edges_at(dg, 2)

    def test_stable_within_epoch(self):
        dg = RelabelingAdversary(path(10), tau=5, seed=5)
        for r in range(1, 6):
            assert edges_at(dg, r) == edges_at(dg, 1)
        assert edges_at(dg, 6) != edges_at(dg, 1)

    def test_sequence_fixed_in_advance(self):
        # Re-deriving an old epoch must reproduce it exactly: the dynamic
        # graph is an oblivious adversary, fixed at execution start.
        dg = RelabelingAdversary(star(10), tau=1, seed=9)
        first = edges_at(dg, 3)
        for r in (50, 1, 7):
            dg.graph_at(r)
        assert edges_at(dg, 3) == first

    def test_determinism_across_instances(self):
        a = RelabelingAdversary(star(10), tau=2, seed=9)
        b = RelabelingAdversary(star(10), tau=2, seed=9)
        for r in (1, 4, 11):
            assert edges_at(a, r) == edges_at(b, r)

    def test_seed_changes_sequence(self):
        a = RelabelingAdversary(star(10), tau=1, seed=1)
        b = RelabelingAdversary(star(10), tau=1, seed=2)
        assert any(edges_at(a, r) != edges_at(b, r) for r in range(1, 6))


class TestPeriodicRewire:
    def test_resampled_regular_stays_regular(self):
        dg = PeriodicRewireGraph.resampled_regular(12, 3, tau=2, seed=4)
        for r in (1, 3, 9):
            assert all(d == 3 for _, d in dg.graph_at(r).degree)

    def test_connected_every_epoch(self):
        dg = PeriodicRewireGraph.resampled_gnp(14, 0.3, tau=1, seed=4)
        for r in range(1, 12):
            assert nx.is_connected(dg.graph_at(r))

    def test_respects_tau(self):
        dg = PeriodicRewireGraph.resampled_gnp(14, 0.3, tau=3, seed=4)
        assert edges_at(dg, 1) == edges_at(dg, 2) == edges_at(dg, 3)
        assert edges_at(dg, 4) != edges_at(dg, 1)

    def test_factory_output_validated(self):
        def bad_factory(epoch, rng):
            g = nx.Graph()
            g.add_nodes_from(range(6))
            g.add_edge(0, 1)  # disconnected
            return g

        dg = PeriodicRewireGraph(n=6, tau=1, seed=0, factory=bad_factory)
        with pytest.raises(Exception):
            dg.graph_at(1)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicRewireGraph.resampled_gnp(8, 0.5, tau=0, seed=0)
        with pytest.raises(ConfigurationError):
            PeriodicRewireGraph.resampled_gnp(8, 0.5, tau=1.5, seed=0)


class TestGeometricMobility:
    def test_connected_every_round(self):
        dg = GeometricMobilityGraph(n=20, radius=0.3, step=0.05, tau=2, seed=1)
        for r in range(1, 20):
            assert nx.is_connected(dg.graph_at(r))

    def test_positions_move(self):
        dg = GeometricMobilityGraph(n=15, radius=0.4, step=0.1, tau=1, seed=1)
        seqs = {edges_at(dg, r) for r in range(1, 10)}
        assert len(seqs) > 1

    def test_old_epochs_replayable(self):
        # Regression: metrics revisit early epochs after a run walked the
        # graph forward; replays must reproduce the exact graphs the run
        # saw (epochs are a pure function of the seed).
        dg = GeometricMobilityGraph(n=10, radius=0.4, step=0.1, tau=1, seed=1)
        seen = {r: edges_at(dg, r) for r in range(1, 12)}
        for r in (1, 5, 11):
            assert edges_at(dg, r) == seen[r]

    def test_replay_does_not_disturb_forward_state(self):
        fresh = GeometricMobilityGraph(n=12, radius=0.35, step=0.08, tau=1,
                                       seed=4)
        expected = {r: edges_at(fresh, r) for r in range(1, 9)}
        dg = GeometricMobilityGraph(n=12, radius=0.35, step=0.08, tau=1,
                                    seed=4)
        dg.graph_at(5)
        assert edges_at(dg, 1) == expected[1]  # replay of an old epoch
        for r in (6, 7, 8):  # forward motion continues from live state
            assert edges_at(dg, r) == expected[r]

    def test_replay_does_not_recount_bridges(self):
        dg = GeometricMobilityGraph(n=16, radius=0.18, step=0.05, tau=1,
                                    seed=2)
        for r in range(1, 8):
            dg.graph_at(r)
        counted = dg.bridges_added
        assert counted > 0  # a radius this small needs bridging
        dg.graph_at(1)
        dg.graph_at(3)
        assert dg.bridges_added == counted

    def test_metrics_after_run(self):
        # The original crash: dynamic_max_degree re-reads epoch 0 after
        # the engine walked the mobility graph forward.
        dg = GeometricMobilityGraph(n=14, radius=0.4, step=0.1, tau=2,
                                    seed=3)
        dg.graph_at(30)
        assert dynamic_max_degree(dg, horizon=30) >= 1
        assert dynamic_expansion_estimate(dg, horizon=10, samples=8) > 0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=10, radius=0.0, step=0.1, tau=1, seed=1)
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=10, radius=0.3, step=2.0, tau=1, seed=1)

    def test_bridging_matches_reference_loop(self):
        # Pin the vectorized nearest-pair bridging against the original
        # pure-Python quadruple loop: identical bridge edges (including
        # tie-break order) on meshes fragmented enough to need several.
        def reference_bridges(g, positions):
            bridges = []
            components = [list(c) for c in nx.connected_components(g)]
            while len(components) > 1:
                base = components[0]
                best = None
                for other_idx, other in enumerate(components[1:], start=1):
                    for u in base:
                        xu, yu = positions[u]
                        for v in other:
                            xv, yv = positions[v]
                            d = (xu - xv) ** 2 + (yu - yv) ** 2
                            if best is None or d < best[0]:
                                best = (d, u, v, other_idx)
            # reference adds the edge, records it, merges, repeats
                _, u, v, other_idx = best
                g.add_edge(u, v)
                bridges.append((u, v))
                base.extend(components.pop(other_idx))
            return bridges

        for seed in (1, 2, 3, 9):
            dg = GeometricMobilityGraph(n=30, radius=0.12, step=0.05,
                                        tau=1, seed=seed, bridge=False)
            for r in (1, 4, 7):
                raw = dg.graph_at(r).copy()
                positions = dg.positions_at(dg.epoch_of(r))
                expected_g = raw.copy()
                expected = reference_bridges(expected_g, positions)
                actual_g = raw.copy()
                dg._bridge_components(actual_g, positions,
                                      record_bridges=False)
                actual = [
                    e for e in actual_g.edges if e not in set(raw.edges)
                ]
                assert nx.utils.graphs_equal(actual_g, expected_g)
                assert sorted(map(tuple, map(sorted, actual))) == sorted(
                    map(tuple, map(sorted, expected))
                )

    def test_fragmented_gnp_runs_on_both_engine_paths(self):
        # require_connected=False: the first sample stands, fragments and
        # all; the engine tolerates isolated vertices on both paths and
        # the two front halves stay byte-identical.
        from repro.core.problem import uniform_instance
        from repro.core.runner import build_nodes
        from repro.experiments.fastpath import trace_signature
        from repro.sim.channel import ChannelPolicy
        from repro.sim.engine import Simulation

        def fragmented():
            return PeriodicRewireGraph.resampled_gnp(
                n=16, p=0.08, tau=2, seed=3, require_connected=False
            )

        assert any(
            not nx.is_connected(fragmented().graph_at(r))
            for r in range(1, 12, 2)
        )
        signatures = []
        for engine_mode in ("object", "array"):
            instance = uniform_instance(n=16, k=2, seed=3)
            nodes = build_nodes("sharedbit", instance, seed=3)
            sim = Simulation(
                fragmented(), nodes, b=1, seed=3,
                channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
                engine_mode=engine_mode,
            )
            sim.run(max_rounds=30)
            signatures.append(trace_signature(sim.current_round, sim.trace))
        assert signatures[0] == signatures[1]

    def test_unbridged_mesh_may_fragment(self):
        # bridge=False: connectivity is policy now, and a tiny radius
        # leaves the proximity mesh in pieces.
        dg = GeometricMobilityGraph(n=30, radius=0.08, step=0.05, tau=1,
                                    seed=1, bridge=False)
        assert any(
            not nx.is_connected(dg.graph_at(r)) for r in range(1, 6)
        )
        assert dg.bridges_added == 0


class TestDynamicMetrics:
    def test_static_max_degree(self):
        dg = StaticDynamicGraph(star(9))
        assert dynamic_max_degree(dg, horizon=100) == 8

    def test_relabeling_preserves_max_degree(self):
        dg = RelabelingAdversary(star(9), tau=1, seed=3)
        assert dynamic_max_degree(dg, horizon=10) == 8

    def test_dynamic_expansion_static_case(self):
        topo = cycle(12)
        dg = StaticDynamicGraph(topo)
        est = dynamic_expansion_estimate(dg, horizon=50)
        assert est == pytest.approx(topo.alpha)

    def test_dynamic_expansion_relabeling_invariant(self):
        topo = cycle(12)
        dg = RelabelingAdversary(topo, tau=2, seed=3)
        est = dynamic_expansion_estimate(dg, horizon=8)
        assert est == pytest.approx(topo.alpha)


class TestValidation:
    def test_n_too_small(self):
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=1, radius=0.3, step=0.1, tau=1, seed=0)

    def test_tau_infinity_epoch(self):
        dg = StaticDynamicGraph(cycle(6))
        assert dg.tau == math.inf


class TestSpatialGridIdentity:
    """The cell grid is pinned byte-identical to the blocked sweep."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("radius", [0.03, 0.1, 0.35])
    def test_grid_matches_blocked_sweep(self, seed, radius):
        rng = np.random.default_rng(seed)
        xs = rng.random(300)
        ys = rng.random(300)
        gu, gv = disk_edges_grid(xs, ys, radius)
        bu, bv = disk_edges_blocked(xs, ys, radius)
        assert np.array_equal(gu, bu)
        assert np.array_equal(gv, bv)

    def test_exact_ties_and_duplicates(self):
        # Lattice coordinates force coincident points and distances
        # exactly equal to the radius (the <= boundary).
        rng = np.random.default_rng(7)
        xs = rng.integers(0, 8, 120) / 8.0
        ys = rng.integers(0, 8, 120) / 8.0
        for radius in (0.125, 0.25):
            gu, gv = disk_edges_grid(xs, ys, radius)
            bu, bv = disk_edges_blocked(xs, ys, radius)
            assert np.array_equal(gu, bu)
            assert np.array_equal(gv, bv)

    def test_unit_square_boundary(self):
        xs = np.array([0.0, 1.0, 1.0, 0.5])
        ys = np.array([0.0, 1.0, 0.95, 0.5])
        gu, gv = disk_edges_grid(xs, ys, 0.2)
        bu, bv = disk_edges_blocked(xs, ys, 0.2)
        assert np.array_equal(gu, bu)
        assert np.array_equal(gv, bv)
        assert (1, 2) in set(zip(gu.tolist(), gv.tolist()))

    def test_empty_and_singleton(self):
        empty = np.empty(0)
        assert disk_edges_grid(empty, empty, 0.3)[0].size == 0
        one = np.array([0.5])
        assert disk_edges_grid(one, one, 0.3)[0].size == 0

    def test_dispatch_rejects_unknown_method(self):
        xs = np.array([0.1, 0.2])
        with pytest.raises(ValueError):
            disk_edges(xs, xs, 0.1, method="quadtree")

    def test_fastpath_gate_is_clean(self):
        # The same differential gate CI runs (bench_scale --quick).
        assert check_grid_identity() == []


class TestPointIndex:
    @staticmethod
    def _points(seed, nb=150, nq=40):
        rng = np.random.default_rng(seed)
        return (rng.random(nb), rng.random(nb),
                rng.random(nq), rng.random(nq))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dense_nearest_pair(self, seed):
        bx, by, ox, oy = self._points(seed)
        assert PointIndex(bx, by).nearest(ox, oy) == \
               nearest_pair(bx, by, ox, oy)

    def test_tie_break_matches_dense(self):
        # Lattice coordinates: many exact-distance ties; the index must
        # reproduce np.argmin's row-major first-minimum choice.
        rng = np.random.default_rng(5)
        bx = rng.integers(0, 6, 80) / 6.0
        by = rng.integers(0, 6, 80) / 6.0
        ox = rng.integers(0, 6, 30) / 6.0
        oy = rng.integers(0, 6, 30) / 6.0
        assert PointIndex(bx, by).nearest(ox, oy) == \
               nearest_pair(bx, by, ox, oy)

    def test_queries_outside_base_bounding_box(self):
        rng = np.random.default_rng(9)
        bx = rng.random(100) * 0.25          # base in [0, 0.25]^2
        by = rng.random(100) * 0.25
        ox = 0.7 + rng.random(20) * 0.3      # queries far outside
        oy = 0.7 + rng.random(20) * 0.3
        assert PointIndex(bx, by).nearest(ox, oy) == \
               nearest_pair(bx, by, ox, oy)

    def test_degenerate_coincident_base(self):
        bx = np.full(10, 0.5)
        by = np.full(10, 0.5)
        ox = np.array([0.1, 0.9])
        oy = np.array([0.2, 0.8])
        assert PointIndex(bx, by).nearest(ox, oy) == \
               nearest_pair(bx, by, ox, oy)


class TestGeometricGridPaths:
    """The mobility graph's grid build equals the blocked reference."""

    def test_bridged_graphs_identical_under_blocked_reference(
        self, monkeypatch
    ):
        import repro.graphs.dynamic as dyn
        from repro.graphs import spatial

        params = dict(n=24, radius=0.15, step=0.05, tau=1, seed=2)
        via_grid = GeometricMobilityGraph(**params)
        expected = {r: edges_at(via_grid, r) for r in range(1, 8)}
        assert via_grid.bridges_added > 0  # the radius fragments

        monkeypatch.setattr(
            dyn, "disk_edges",
            lambda xs, ys, r: spatial.disk_edges_blocked(xs, ys, r),
        )
        via_blocked = GeometricMobilityGraph(**params)
        for r in range(1, 8):
            assert edges_at(via_blocked, r) == expected[r]
        assert via_blocked.bridges_added == via_grid.bridges_added

    def test_bridge_point_index_matches_dense(self, monkeypatch):
        params = dict(n=48, radius=0.1, step=0.05, tau=1, seed=3)
        dense = GeometricMobilityGraph(**params)
        expected = {r: edges_at(dense, r) for r in range(1, 6)}
        assert dense.bridges_added > 0

        # Force every bridging nearest-pair query through PointIndex.
        monkeypatch.setattr(GeometricMobilityGraph, "_BRIDGE_DENSE_MAX", 0)
        indexed = GeometricMobilityGraph(**params)
        for r in range(1, 6):
            assert edges_at(indexed, r) == expected[r]
        assert indexed.bridges_added == dense.bridges_added

    def test_unbridged_csr_matches_graph_conversion(self):
        from repro.sim.adjacency import CSRAdjacency

        dg = GeometricMobilityGraph(n=30, radius=0.3, step=0.05, tau=2,
                                    seed=5, bridge=False)
        for r in (1, 3, 9, 1):  # includes an out-of-order replay
            direct = dg.csr_at(r)
            rebuilt = CSRAdjacency.from_graph(dg.graph_at(r))
            assert direct.same_structure(rebuilt)

    def test_unbridged_mesh_may_fragment(self):
        dg = GeometricMobilityGraph(n=24, radius=0.1, step=0.05, tau=1,
                                    seed=2, bridge=False)
        assert dg.bridges_added == 0
        assert not nx.is_connected(dg.graph_at(1))
