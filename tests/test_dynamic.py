"""Tests for dynamic graphs: stability, determinism, connectivity."""

import math

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs.dynamic import (
    TAU_INFINITY,
    GeometricMobilityGraph,
    PeriodicRewireGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
    dynamic_expansion_estimate,
    dynamic_max_degree,
)
from repro.graphs.topologies import cycle, double_star, path, star


def edges_at(dg, r):
    return frozenset(map(tuple, map(sorted, dg.graph_at(r).edges)))


class TestStaticDynamicGraph:
    def test_same_graph_every_round(self):
        dg = StaticDynamicGraph(cycle(8))
        assert edges_at(dg, 1) == edges_at(dg, 1000)

    def test_tau_is_infinity(self):
        assert StaticDynamicGraph(cycle(8)).tau == TAU_INFINITY

    def test_epoch_always_zero(self):
        dg = StaticDynamicGraph(cycle(8))
        assert dg.epoch_of(1) == dg.epoch_of(999) == 0

    def test_rounds_one_indexed(self):
        dg = StaticDynamicGraph(cycle(8))
        with pytest.raises(ConfigurationError):
            dg.graph_at(0)


class TestRelabelingAdversary:
    def test_preserves_shape(self):
        topo = double_star(4)
        dg = RelabelingAdversary(topo, tau=1, seed=5)
        for r in (1, 2, 3):
            g = dg.graph_at(r)
            assert nx.is_isomorphic(g, topo.graph)

    def test_changes_at_tau_one(self):
        # A path's relabeled edge set pins down the permutation (up to
        # reversal), so distinct epochs almost surely differ.
        dg = RelabelingAdversary(path(10), tau=1, seed=5)
        assert edges_at(dg, 1) != edges_at(dg, 2)

    def test_stable_within_epoch(self):
        dg = RelabelingAdversary(path(10), tau=5, seed=5)
        for r in range(1, 6):
            assert edges_at(dg, r) == edges_at(dg, 1)
        assert edges_at(dg, 6) != edges_at(dg, 1)

    def test_sequence_fixed_in_advance(self):
        # Re-deriving an old epoch must reproduce it exactly: the dynamic
        # graph is an oblivious adversary, fixed at execution start.
        dg = RelabelingAdversary(star(10), tau=1, seed=9)
        first = edges_at(dg, 3)
        for r in (50, 1, 7):
            dg.graph_at(r)
        assert edges_at(dg, 3) == first

    def test_determinism_across_instances(self):
        a = RelabelingAdversary(star(10), tau=2, seed=9)
        b = RelabelingAdversary(star(10), tau=2, seed=9)
        for r in (1, 4, 11):
            assert edges_at(a, r) == edges_at(b, r)

    def test_seed_changes_sequence(self):
        a = RelabelingAdversary(star(10), tau=1, seed=1)
        b = RelabelingAdversary(star(10), tau=1, seed=2)
        assert any(edges_at(a, r) != edges_at(b, r) for r in range(1, 6))


class TestPeriodicRewire:
    def test_resampled_regular_stays_regular(self):
        dg = PeriodicRewireGraph.resampled_regular(12, 3, tau=2, seed=4)
        for r in (1, 3, 9):
            assert all(d == 3 for _, d in dg.graph_at(r).degree)

    def test_connected_every_epoch(self):
        dg = PeriodicRewireGraph.resampled_gnp(14, 0.3, tau=1, seed=4)
        for r in range(1, 12):
            assert nx.is_connected(dg.graph_at(r))

    def test_respects_tau(self):
        dg = PeriodicRewireGraph.resampled_gnp(14, 0.3, tau=3, seed=4)
        assert edges_at(dg, 1) == edges_at(dg, 2) == edges_at(dg, 3)
        assert edges_at(dg, 4) != edges_at(dg, 1)

    def test_factory_output_validated(self):
        def bad_factory(epoch, rng):
            g = nx.Graph()
            g.add_nodes_from(range(6))
            g.add_edge(0, 1)  # disconnected
            return g

        dg = PeriodicRewireGraph(n=6, tau=1, seed=0, factory=bad_factory)
        with pytest.raises(Exception):
            dg.graph_at(1)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicRewireGraph.resampled_gnp(8, 0.5, tau=0, seed=0)
        with pytest.raises(ConfigurationError):
            PeriodicRewireGraph.resampled_gnp(8, 0.5, tau=1.5, seed=0)


class TestGeometricMobility:
    def test_connected_every_round(self):
        dg = GeometricMobilityGraph(n=20, radius=0.3, step=0.05, tau=2, seed=1)
        for r in range(1, 20):
            assert nx.is_connected(dg.graph_at(r))

    def test_positions_move(self):
        dg = GeometricMobilityGraph(n=15, radius=0.4, step=0.1, tau=1, seed=1)
        seqs = {edges_at(dg, r) for r in range(1, 10)}
        assert len(seqs) > 1

    def test_forward_access_only(self):
        dg = GeometricMobilityGraph(n=10, radius=0.4, step=0.1, tau=1, seed=1)
        dg.graph_at(10)
        dg.graph_at(11)
        with pytest.raises(ConfigurationError):
            dg.graph_at(1)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=10, radius=0.0, step=0.1, tau=1, seed=1)
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=10, radius=0.3, step=2.0, tau=1, seed=1)


class TestDynamicMetrics:
    def test_static_max_degree(self):
        dg = StaticDynamicGraph(star(9))
        assert dynamic_max_degree(dg, horizon=100) == 8

    def test_relabeling_preserves_max_degree(self):
        dg = RelabelingAdversary(star(9), tau=1, seed=3)
        assert dynamic_max_degree(dg, horizon=10) == 8

    def test_dynamic_expansion_static_case(self):
        topo = cycle(12)
        dg = StaticDynamicGraph(topo)
        est = dynamic_expansion_estimate(dg, horizon=50)
        assert est == pytest.approx(topo.alpha)

    def test_dynamic_expansion_relabeling_invariant(self):
        topo = cycle(12)
        dg = RelabelingAdversary(topo, tau=2, seed=3)
        est = dynamic_expansion_estimate(dg, horizon=8)
        assert est == pytest.approx(topo.alpha)


class TestValidation:
    def test_n_too_small(self):
        with pytest.raises(ConfigurationError):
            GeometricMobilityGraph(n=1, radius=0.3, step=0.1, tau=1, seed=0)

    def test_tau_infinity_epoch(self):
        dg = StaticDynamicGraph(cycle(6))
        assert dg.tau == math.inf
