"""Tests for the round engine: model enforcement, traces, termination."""

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolViolationError,
    RoundLimitExceeded,
)
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import cycle, path, star
from repro.sim.channel import Channel, ChannelPolicy
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation
from repro.sim.protocol import NodeProtocol
from repro.sim.termination import all_agree_on_leader, any_of, never


class CountingNode(NodeProtocol):
    """Advertises a fixed tag; proposes to its smallest neighbor when odd."""

    def __init__(self, uid, tag=0, propose_when_odd=False):
        super().__init__(uid)
        self.tag = tag
        self.propose_when_odd = propose_when_odd
        self.connections = 0
        self.seen_rounds = []
        self.seen_neighbor_tags = {}

    def advertise(self, round_index, neighbor_uids):
        self.seen_rounds.append(round_index)
        return self.tag

    def propose(self, round_index, neighbors):
        self.seen_neighbor_tags = {v.uid: v.tag for v in neighbors}
        if self.propose_when_odd and self.uid % 2 == 1 and neighbors:
            return min(v.uid for v in neighbors)
        return None

    def interact(self, responder, channel, round_index):
        channel.charge_bits(8, label="test")
        self.connections += 1
        responder.connections += 1


def simple_sim(topo, node_factory, b=1, seed=0, **kwargs):
    nodes = {v: node_factory(v) for v in range(topo.n)}
    dg = StaticDynamicGraph(topo)
    return Simulation(dg, nodes, b=b, seed=seed, **kwargs), nodes


class TestConstruction:
    def test_rejects_missing_vertices(self):
        topo = cycle(5)
        nodes = {v: CountingNode(v + 1) for v in range(4)}  # one missing
        with pytest.raises(ConfigurationError):
            Simulation(StaticDynamicGraph(topo), nodes, b=1, seed=0)

    def test_rejects_duplicate_uids(self):
        topo = cycle(4)
        nodes = {v: CountingNode(7) for v in range(4)}
        with pytest.raises(ConfigurationError):
            Simulation(StaticDynamicGraph(topo), nodes, b=1, seed=0)

    def test_rejects_negative_b(self):
        topo = cycle(4)
        nodes = {v: CountingNode(v + 1) for v in range(4)}
        with pytest.raises(ConfigurationError):
            Simulation(StaticDynamicGraph(topo), nodes, b=-1, seed=0)


class TestTagEnforcement:
    def test_b0_rejects_nonzero_tag(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1, tag=1), b=0)
        with pytest.raises(ProtocolViolationError):
            sim.step()

    def test_b1_rejects_tag_two(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1, tag=2), b=1)
        with pytest.raises(ProtocolViolationError):
            sim.step()

    def test_b2_allows_tag_three(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1, tag=3), b=2)
        sim.step()  # no error

    def test_neighbors_see_tags(self):
        sim, nodes = simple_sim(
            path(3), lambda v: CountingNode(v + 1, tag=1), b=1
        )
        sim.step()
        # Middle vertex (uid 2) saw both endpoints' tags.
        assert nodes[1].seen_neighbor_tags == {1: 1, 3: 1}


class TestProposalEnforcement:
    def test_proposal_to_non_neighbor_rejected(self):
        class BadNode(CountingNode):
            def propose(self, round_index, neighbors):
                return 999

        sim, _ = simple_sim(cycle(4), lambda v: BadNode(v + 1))
        with pytest.raises(ProtocolViolationError):
            sim.step()

    def test_valid_proposals_connect(self):
        sim, nodes = simple_sim(
            path(2), lambda v: CountingNode(v + 1, propose_when_odd=True)
        )
        record = sim.step()
        assert record.connections == 1
        assert nodes[0].connections == 1
        assert nodes[1].connections == 1


class TestRunLoop:
    def test_runs_to_max_rounds(self):
        sim, nodes = simple_sim(cycle(4), lambda v: CountingNode(v + 1))
        result = sim.run(max_rounds=10)
        assert result.rounds == 10
        assert not result.terminated
        assert nodes[0].seen_rounds == list(range(1, 11))

    def test_termination_stops_early(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1))

        def stop_at_3(nodes, r):
            return r >= 3

        result = sim.run(max_rounds=100, termination=stop_at_3)
        assert result.rounds == 3
        assert result.terminated

    def test_raise_on_limit(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1))
        with pytest.raises(RoundLimitExceeded):
            sim.run(max_rounds=5, termination=never(), raise_on_limit=True)

    def test_termination_every_stride(self):
        sim, _ = simple_sim(cycle(4), lambda v: CountingNode(v + 1),
                            termination_every=4)
        result = sim.run(max_rounds=100, termination=lambda nodes, r: r >= 3)
        # Condition is only polled at multiples of 4.
        assert result.rounds == 4

    def test_nodes_by_uid(self):
        sim, nodes = simple_sim(cycle(4), lambda v: CountingNode(v + 1))
        result = sim.run(max_rounds=1)
        assert set(result.nodes_by_uid) == {1, 2, 3, 4}


class TestTrace:
    def test_trace_counts_connections(self):
        sim, _ = simple_sim(
            path(2), lambda v: CountingNode(v + 1, propose_when_odd=True)
        )
        result = sim.run(max_rounds=5)
        assert result.trace.total_connections == 5
        assert result.trace.total_control_bits == 5 * 8

    def test_gauges_recorded(self):
        sim, _ = simple_sim(
            cycle(4),
            lambda v: CountingNode(v + 1),
            gauges={"round_echo": lambda nodes, r: r},
            gauge_every=2,
        )
        result = sim.run(max_rounds=6)
        series = result.trace.gauge_series("round_echo")
        assert series == [(2, 2), (4, 4), (6, 6)]


class TestDynamicTopology:
    def test_adjacency_tracks_relabeling(self):
        topo = star(6)
        dg = RelabelingAdversary(topo, tau=1, seed=3)
        nodes = {v: CountingNode(v + 1, propose_when_odd=True) for v in range(6)}
        sim = Simulation(dg, nodes, b=1, seed=0)
        result = sim.run(max_rounds=20)
        # Connections happen every round (odd-uid nodes always propose and
        # the star guarantees a non-proposing hub or leaf target exists
        # often enough that at least some rounds connect).
        assert result.trace.total_connections > 0

    def test_determinism(self):
        def run_once():
            topo = cycle(6)
            dg = RelabelingAdversary(topo, tau=1, seed=3)
            nodes = {
                v: CountingNode(v + 1, propose_when_odd=True) for v in range(6)
            }
            sim = Simulation(dg, nodes, b=1, seed=11)
            result = sim.run(max_rounds=30)
            return result.trace.total_connections

        assert run_once() == run_once()


class ViewCaptureNode(CountingNode):
    """Records the exact view tuples the engine passes to propose."""

    def __init__(self, uid, tag=0):
        super().__init__(uid, tag=tag)
        self.seen_views = []

    def propose(self, round_index, neighbors):
        self.seen_views.append(neighbors)
        return super().propose(round_index, neighbors)


class TogglingNode(CountingNode):
    """Advertises the round's parity — tags change every round."""

    def advertise(self, round_index, neighbor_uids):
        return round_index % 2


class TestHotPathCaches:
    """The per-epoch NeighborView skeleton cache and the trace light path."""

    def test_view_tuple_reused_verbatim_when_tags_stable(self):
        sim, nodes = simple_sim(cycle(4), lambda v: ViewCaptureNode(v + 1))
        for _ in range(4):
            sim.step()
        seen = nodes[0].seen_views
        # Constant b=0-style tags on a static graph: after the first round
        # settles the tags, every later round must hand propose the same
        # tuple object (no per-round reallocation).
        assert seen[1] is seen[2] is seen[3]

    def test_views_refresh_when_tags_change(self):
        sim, nodes = simple_sim(path(3), lambda v: TogglingNode(v + 1))
        sim.step()
        assert nodes[1].seen_neighbor_tags == {1: 1, 3: 1}
        sim.step()
        assert nodes[1].seen_neighbor_tags == {1: 0, 3: 0}
        sim.step()
        assert nodes[1].seen_neighbor_tags == {1: 1, 3: 1}

    def test_views_track_epoch_changes(self):
        topo = cycle(6)
        dg = RelabelingAdversary(topo, tau=1, seed=3)
        nodes = {v: CountingNode(v + 1, tag=1) for v in range(6)}
        sim = Simulation(dg, nodes, b=1, seed=0)
        for rnd in range(1, 6):
            graph = dg.graph_at(rnd)
            sim.step()
            for vertex in range(6):
                expected = {
                    nodes[nv].uid: 1 for nv in graph.neighbors(vertex)
                }
                assert nodes[vertex].seen_neighbor_tags == expected, (
                    f"round {rnd}, vertex {vertex}"
                )

    def test_unsampled_rounds_skip_records_but_keep_totals(self):
        sim, _ = simple_sim(
            path(2),
            lambda v: CountingNode(v + 1, propose_when_odd=True),
            trace_sample_every=4,
        )
        records = [sim.step() for _ in range(8)]
        # Round 1 and multiples of sample_every materialize records; the
        # rest take the light path and return None.
        assert [r.round_index for r in records if r is not None] == [1, 4, 8]
        assert [r.round_index for r in sim.trace.records] == [1, 4, 8]
        # Totals stay exact regardless of sampling.
        assert sim.trace.total_rounds == 8
        assert sim.trace.total_connections == 8
        assert sim.trace.total_control_bits == 8 * 8

    def test_gauge_rounds_always_materialize(self):
        sim, _ = simple_sim(
            cycle(4),
            lambda v: CountingNode(v + 1),
            gauges={"round_echo": lambda nodes, r: r},
            gauge_every=3,
            trace_sample_every=1000,
        )
        sim.run(max_rounds=7)
        assert sim.trace.gauge_series("round_echo") == [(3, 3), (6, 6)]


class TestTerminationHelpers:
    def test_any_of(self):
        cond = any_of(lambda n, r: r >= 5, lambda n, r: r == 2)
        assert cond({}, 2)
        assert cond({}, 6)
        assert not cond({}, 3)

    def test_all_agree_on_leader(self):
        class Stub:
            def __init__(self, leader):
                self.candidate_leader = leader

        cond = all_agree_on_leader()
        assert cond({0: Stub(1), 1: Stub(1)}, 1)
        assert not cond({0: Stub(1), 1: Stub(2)}, 1)
