"""Tests for ε-gossip: termination checks and the §7 speedup."""

import pytest

from repro.core.epsilon import (
    EpsilonView,
    epsilon_termination,
    run_epsilon_gossip,
)
from repro.errors import ConfigurationError
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import complete, cycle, expander


class TestTermination:
    def test_condition_uses_lemma_7_3(self):
        class Stub:
            def __init__(self, uid, tokens):
                self.uid = uid
                self.known_tokens = frozenset(tokens)

        cond = epsilon_termination(0.5)
        # 3 of 4 nodes share a full set -> solved at eps=0.5.
        nodes = {
            0: Stub(1, {1, 2, 3}),
            1: Stub(2, {1, 2, 3}),
            2: Stub(3, {1, 2, 3}),
            3: Stub(4, {4}),
        }
        assert cond(nodes, 1)
        # All singletons -> unsolved.
        nodes = {i: Stub(i + 1, {i + 1}) for i in range(4)}
        assert not cond(nodes, 1)


class TestRun:
    def test_solves_on_expander(self):
        result = run_epsilon_gossip(
            StaticDynamicGraph(expander(16, 4, seed=1)),
            epsilon=0.5,
            seed=3,
            max_rounds=30_000,
        )
        assert result.solved
        assert result.epsilon == 0.5
        assert result.instance.k == 16

    def test_solves_on_dynamic_graph(self):
        result = run_epsilon_gossip(
            RelabelingAdversary(expander(12, 4, seed=2), tau=1, seed=5),
            epsilon=0.5,
            seed=3,
            max_rounds=30_000,
        )
        assert result.solved

    def test_core_size_reported(self):
        result = run_epsilon_gossip(
            StaticDynamicGraph(complete(10)),
            epsilon=0.5,
            seed=1,
            max_rounds=30_000,
        )
        assert result.solved
        assert result.core_size >= 0.5 * 10 or result.residual_potential == 0

    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            run_epsilon_gossip(
                StaticDynamicGraph(cycle(8)), epsilon=1.0, seed=0,
                max_rounds=10,
            )

    def test_smaller_epsilon_not_slower(self):
        """Relaxing the requirement can only help (monotone in ε)."""
        dg = lambda: StaticDynamicGraph(expander(16, 4, seed=1))
        loose = run_epsilon_gossip(dg(), epsilon=0.3, seed=3,
                                   max_rounds=30_000)
        tight = run_epsilon_gossip(dg(), epsilon=0.95, seed=3,
                                   max_rounds=60_000)
        assert loose.solved and tight.solved
        assert loose.rounds <= tight.rounds

    def test_epsilon_faster_than_full_gossip(self):
        """The §7 headline: ε-gossip beats full gossip for constant ε on a
        well-connected graph with k = n."""
        from repro.core.problem import everyone_starts_instance
        from repro.core.runner import run_gossip

        topo = expander(20, 6, seed=2)
        eps_result = run_epsilon_gossip(
            StaticDynamicGraph(topo), epsilon=0.5, seed=3, max_rounds=60_000
        )
        inst = everyone_starts_instance(n=20, seed=3)
        full_result = run_gossip(
            "sharedbit",
            StaticDynamicGraph(topo),
            inst,
            seed=3,
            max_rounds=60_000,
        )
        assert eps_result.solved and full_result.solved
        assert eps_result.rounds < full_result.rounds


class TestEpsilonView:
    def test_view_shape(self):
        view = EpsilonView(known_tokens=frozenset({1, 2}), own_token_id=1)
        assert view.known_tokens == frozenset({1, 2})
        assert view.own_token_id == 1
