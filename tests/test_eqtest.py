"""Tests for the EQTest equality protocol: one-sided error, bit costs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcplx.eqtest import EqualityTester
from repro.errors import ConfigurationError
from repro.sim.channel import Channel, ChannelPolicy


class TestCompleteness:
    """Equal sets are *always* reported equal (probability-1 guarantee)."""

    def test_equal_sets_always_equal(self):
        tester = EqualityTester(upper_n=64)
        rng = random.Random(0)
        for trial in range(50):
            size = rng.randint(0, 20)
            s = set(rng.sample(range(1, 65), size))
            assert tester.test(s, set(s), trials=3, rng=rng)

    def test_empty_sets_equal(self):
        tester = EqualityTester(upper_n=16)
        assert tester.test(set(), set(), trials=1, rng=random.Random(1))


class TestSoundness:
    def test_unequal_sets_usually_detected(self):
        tester = EqualityTester(upper_n=64)
        rng = random.Random(7)
        errors = 0
        for trial in range(300):
            s = set(rng.sample(range(1, 65), 10))
            t = set(s)
            t.remove(next(iter(t)))
            t.add(next(x for x in range(1, 65) if x not in s))
            if tester.test(s, t, trials=5, rng=rng):
                errors += 1
        # Per-call error <= 2^-5 ~ 3%; allow generous slack.
        assert errors <= 30

    def test_more_trials_reduce_error(self):
        tester = EqualityTester(upper_n=16)
        rng = random.Random(3)

        def error_rate(trials):
            errors = 0
            for _ in range(400):
                if tester.test({1, 2}, {1, 3}, trials=trials, rng=rng):
                    errors += 1
            return errors

        assert error_rate(6) <= error_rate(1)

    def test_single_element_difference_detected_eventually(self):
        tester = EqualityTester(upper_n=1024)
        rng = random.Random(5)
        s = set(range(1, 500))
        t = s | {1000}
        assert not tester.test(s, t, trials=20, rng=rng)


class TestAccounting:
    def test_prime_exceeds_2n(self):
        for upper_n in (2, 16, 100, 1000):
            tester = EqualityTester(upper_n=upper_n)
            assert tester.prime > 2 * upper_n

    def test_bits_per_trial_logarithmic(self):
        small = EqualityTester(upper_n=16).bits_per_trial
        large = EqualityTester(upper_n=2**16).bits_per_trial
        assert small < large <= 4 * small

    def test_stats_accumulate(self):
        tester = EqualityTester(upper_n=32)
        rng = random.Random(0)
        tester.test({1}, {1}, trials=4, rng=rng)
        assert tester.stats.calls == 1
        assert tester.stats.trials == 4
        assert tester.stats.bits == 4 * tester.bits_per_trial

    def test_early_exit_on_detection_spends_fewer_trials(self):
        tester = EqualityTester(upper_n=32)
        rng = random.Random(0)
        # Unequal sets stop at the first detecting trial.
        tester.test({1}, {2}, trials=50, rng=rng)
        assert tester.stats.trials < 50

    def test_channel_charged(self):
        tester = EqualityTester(upper_n=32)
        channel = Channel(1, 10, 20, ChannelPolicy(max_control_bits=10**6))
        tester.test({1}, {1}, trials=2, rng=random.Random(0), channel=channel)
        assert channel.bits.total_bits == 2 * tester.bits_per_trial


class TestValidation:
    def test_rejects_tiny_universe(self):
        with pytest.raises(ConfigurationError):
            EqualityTester(upper_n=1)

    def test_rejects_zero_trials(self):
        tester = EqualityTester(upper_n=8)
        with pytest.raises(ConfigurationError):
            tester.test({1}, {1}, trials=0, rng=random.Random(0))


@given(
    st.sets(st.integers(min_value=1, max_value=50), max_size=25),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_reflexivity_property(elements, seed):
    """EQTest(S, S) is true for every S and every randomness."""
    tester = EqualityTester(upper_n=50)
    assert tester.test(elements, set(elements), trials=2,
                       rng=random.Random(seed))
