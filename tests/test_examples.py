"""Smoke tests: every example script runs to completion and prints sense."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    return capsys.readouterr().out


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart",
        "protest_mesh",
        "festival_stable",
        "quorum_epsilon",
        "leader_seed",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"
    assert "Traceback" not in out


def test_quickstart_solves(capsys):
    out = run_example("quickstart", capsys)
    assert "solved=True" in out


def test_quorum_reports_all_epsilons(capsys):
    out = run_example("quorum_epsilon", capsys)
    for eps in ("0.25", "0.50", "0.75", "0.90"):
        assert eps in out


def test_leader_seed_converges(capsys):
    out = run_example("leader_seed", capsys)
    assert "yes" in out
    assert "winning seed" in out
