"""Tests for the experiment orchestration layer (repro.experiments)."""

import json

import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.errors import ConfigurationError
from repro.experiments import (
    CROWDEDBIN_TAU_NOTE,
    ResultCache,
    RunSpec,
    SweepSpec,
    build_config,
    build_dynamic_graph,
    build_instance,
    build_topology,
    execute_run,
    normalize_payload,
    percentile,
    run_hash,
    run_sweep,
)
from repro.graphs.dynamic import (
    RelabelingAdversary,
    StaticDynamicGraph,
    TAU_INFINITY,
)


def tiny_base(algorithm="sharedbit", **extra) -> dict:
    base = {
        "algorithm": algorithm,
        "graph": {"family": "cycle", "params": {"n": 8}},
        "dynamic": {"kind": "static"},
        "instance": {"kind": "uniform", "k": 2},
        "max_rounds": 30_000,
        "engine": {"trace_sample_every": 1024},
    }
    base.update(extra)
    return base


class TestRunSpec:
    def test_payload_round_trip(self):
        spec = RunSpec.from_payload(dict(tiny_base(), seed=7))
        again = RunSpec.from_payload(spec.to_payload())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_ignores_key_order(self):
        payload = dict(tiny_base(), seed=7)
        shuffled = dict(reversed(list(payload.items())))
        assert run_hash(payload) == run_hash(shuffled)

    def test_hash_sensitive_to_values(self):
        a = dict(tiny_base(), seed=7)
        b = dict(tiny_base(), seed=8)
        assert run_hash(a) != run_hash(b)

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_payload(dict(tiny_base(algorithm="nope"), seed=1))

    def test_rejects_unknown_topology(self):
        payload = dict(tiny_base(), seed=1)
        payload["graph"] = {"family": "torus", "params": {}}
        with pytest.raises(ConfigurationError):
            RunSpec.from_payload(payload)

    def test_rejects_unknown_engine_keys(self):
        payload = dict(tiny_base(), seed=1)
        payload["engine"] = {"sample": 2}
        with pytest.raises(ConfigurationError):
            RunSpec.from_payload(payload)

    def test_rejects_unknown_payload_keys(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_payload(dict(tiny_base(), seed=1, wat=True))


class TestBuilders:
    def test_build_topology(self):
        topo = build_topology({"family": "star", "params": {"n": 9}})
        assert topo.n == 9
        assert topo.name == "star"

    def test_build_dynamic_static(self):
        dg = build_dynamic_graph(
            {"family": "cycle", "params": {"n": 6}}, {"kind": "static"}, 3
        )
        assert isinstance(dg, StaticDynamicGraph)
        assert dg.tau == TAU_INFINITY

    def test_build_dynamic_relabeling(self):
        dg = build_dynamic_graph(
            {"family": "cycle", "params": {"n": 6}},
            {"kind": "relabeling", "tau": 2},
            3,
        )
        assert isinstance(dg, RelabelingAdversary)
        assert dg.tau == 2 and dg.seed == 3

    def test_build_dynamic_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            build_dynamic_graph(
                {"family": "cycle", "params": {"n": 6}}, {"kind": "warp"}, 3
            )

    def test_build_instance_uniform_matches_core(self):
        built = build_instance({"kind": "uniform", "k": 3}, 10, seed=5)
        direct = uniform_instance(n=10, k=3, seed=5)
        assert built == direct

    def test_build_instance_token_at(self):
        instance = build_instance({"kind": "token_at", "vertex": 4}, 8, seed=2)
        assert instance.k == 1
        assert list(instance.initial_tokens) == [4]

    def test_build_config_preset_and_overrides(self):
        from repro.core.crowdedbin import CrowdedBinConfig

        cfg = build_config("crowdedbin", {"preset": "practical"})
        assert cfg == CrowdedBinConfig.practical()
        cfg = build_config("crowdedbin", {"preset": "practical", "gamma": 5})
        assert cfg.beta == CrowdedBinConfig.practical().beta
        assert cfg.gamma == 5

    def test_build_config_rejects_bad_preset(self):
        with pytest.raises(ConfigurationError):
            build_config("sharedbit", {"preset": "imaginary"})

    def test_build_config_rejects_bad_field(self):
        with pytest.raises(ConfigurationError):
            build_config("multibit", {"nibbles": 3})


class TestSweepSpec:
    def sweep(self, **kwargs) -> SweepSpec:
        defaults = dict(
            name="t",
            base=tiny_base(),
            grid={"algorithm": ["blindmatch", "sharedbit"],
                  "instance.k": [1, 2]},
            seeds=(11, 23),
        )
        defaults.update(kwargs)
        return SweepSpec(**defaults)

    def test_points_cartesian_order(self):
        assert self.sweep().points() == [
            {"algorithm": "blindmatch", "instance.k": 1},
            {"algorithm": "blindmatch", "instance.k": 2},
            {"algorithm": "sharedbit", "instance.k": 1},
            {"algorithm": "sharedbit", "instance.k": 2},
        ]

    def test_runs_enumerates_seeds_per_point(self):
        runs = self.sweep().runs()
        assert len(runs) == 8
        assert [seed for _, _, seed, _ in runs[:2]] == [11, 23]

    def test_dotted_merge(self):
        payload = self.sweep().run_payload(
            {"algorithm": "blindmatch", "instance.k": 2}, seed=11
        )
        assert payload["algorithm"] == "blindmatch"
        assert payload["instance"]["k"] == 2
        assert payload["instance"]["kind"] == "uniform"  # untouched sibling

    def test_overrides_apply_on_match_only(self):
        sweep = self.sweep(
            overrides=[
                {
                    "when": {"algorithm": "sharedbit"},
                    "set": {"max_rounds": 999, "engine.termination_every": 7},
                }
            ]
        )
        hit = sweep.run_payload({"algorithm": "sharedbit", "instance.k": 1}, 11)
        miss = sweep.run_payload({"algorithm": "blindmatch", "instance.k": 1}, 11)
        assert hit["max_rounds"] == 999
        assert hit["engine"]["termination_every"] == 7
        assert miss["max_rounds"] == tiny_base()["max_rounds"]
        assert "termination_every" not in miss["engine"]

    def test_payloads_never_alias_the_spec(self):
        graphs = [
            {"family": "cycle", "params": {"n": 8}},
            {"family": "star", "params": {"n": 8}},
        ]
        sweep = self.sweep(grid={"graph": graphs})
        before = sweep.spec_hash()
        payload = sweep.run_payload({"graph": graphs[0]}, seed=11)
        # Mutating an expanded payload in place (the bench idiom) must not
        # leak back into the spec through a shared grid-value reference.
        payload["graph"]["params"]["n"] = 999
        payload["engine"]["termination_every"] = 16
        assert sweep.grid["graph"][0]["params"]["n"] == 8
        assert sweep.spec_hash() == before
        assert "termination_every" not in sweep.base["engine"]

    def test_json_round_trip(self):
        sweep = self.sweep(overrides=[{"set": {"max_rounds": 5000}}])
        again = SweepSpec.from_json(sweep.to_json())
        assert again == sweep
        assert again.spec_hash() == sweep.spec_hash()

    def test_rejects_seed_in_base_or_grid(self):
        with pytest.raises(ConfigurationError):
            self.sweep(base=dict(tiny_base(), seed=1))
        with pytest.raises(ConfigurationError):
            self.sweep(grid={"seed": [1, 2]})

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            self.sweep(grid={"instance.k": []})

    def test_rejects_seed_in_override_set(self):
        with pytest.raises(ConfigurationError):
            self.sweep(
                overrides=[
                    {"when": {"algorithm": "sharedbit"}, "set": {"seed": 0}}
                ]
            )


class TestFigure1Preset:
    def test_round_trips_and_covers_all_rows(self):
        from repro.experiments import FIGURE1_ROW_KEYS, figure1_sweep

        sweep = figure1_sweep(n=16, k=2)
        again = SweepSpec.from_json(sweep.to_json())
        assert again.spec_hash() == sweep.spec_hash()
        assert [p["algorithm"] for p in sweep.points()] == list(
            FIGURE1_ROW_KEYS
        )
        crowded = sweep.run_payload({"algorithm": "crowdedbin"}, 11)
        assert crowded["dynamic"] == {"kind": "static"}
        eps = sweep.run_payload({"algorithm": "epsilon"}, 11)
        assert eps["instance"] == {"kind": "everyone"}

    def test_argv_flag_tolerates_garbage(self):
        from repro.experiments import argv_flag

        assert argv_flag(["-q", "--jobs", "4"], "--jobs") == "4"
        assert argv_flag(["--jobs"], "--jobs", 1) == 1  # trailing bare flag
        assert argv_flag(["-x", "tests/"], "--jobs", 1) == 1
        # A bare flag followed by another flag is not a value.
        assert argv_flag(["--cache-dir", "--jobs", "4"], "--cache-dir") is None


class TestEpsilonTraceSampling:
    def test_trace_sample_every_reaches_inner_simulation(self):
        from repro.core.epsilon import run_epsilon_gossip
        from repro.graphs.topologies import complete

        result = run_epsilon_gossip(
            StaticDynamicGraph(complete(8)),
            epsilon=0.5,
            seed=11,
            max_rounds=30_000,
            trace_sample_every=1000,
        )
        assert result.solved
        # Round 1 is always kept; everything below the stride is skipped.
        assert len(result.trace.records) <= 1 + result.rounds // 1000


class TestExecuteRun:
    def test_matches_direct_run_gossip(self):
        payload = dict(tiny_base(), seed=11)
        record = execute_run(payload)
        direct = run_gossip(
            algorithm="sharedbit",
            dynamic_graph=StaticDynamicGraph(
                build_topology(payload["graph"])
            ),
            instance=uniform_instance(n=8, k=2, seed=11),
            seed=11,
            max_rounds=30_000,
            trace_sample_every=1024,
        )
        assert record["solved"] and direct.solved
        assert record["rounds"] == direct.rounds
        assert record["connections"] == direct.trace.total_connections

    def test_crowdedbin_substitution_recorded(self):
        payload = dict(
            tiny_base("crowdedbin"),
            seed=11,
            dynamic={"kind": "relabeling", "tau": 1},
            config={"preset": "practical"},
        )
        normalized, notes = normalize_payload(dict(payload))
        assert normalized["dynamic"] == {"kind": "static"}
        assert notes == [CROWDEDBIN_TAU_NOTE]
        record = execute_run(payload)
        assert record["solved"]
        assert record["notes"] == [CROWDEDBIN_TAU_NOTE]

    def test_epsilon_algorithm(self):
        record = execute_run({
            "algorithm": "epsilon",
            "graph": {"family": "complete", "params": {"n": 8}},
            "dynamic": {"kind": "static"},
            "instance": {"kind": "everyone"},
            "config": {"epsilon": 0.5},
            "seed": 11,
            "max_rounds": 30_000,
        })
        assert record["solved"]
        assert record["core_size"] >= 4

    def test_gauge_series_serialized(self):
        payload = dict(tiny_base(), seed=11)
        payload["engine"] = {
            "trace_sample_every": 1,
            "gauges": ["coverage"],
            "gauge_every": 2,
        }
        record = execute_run(payload)
        series = record["gauges"]["coverage"]
        assert series, "expected coverage samples"
        round_index, (min_cov, mean_cov) = series[0]
        assert round_index == 2
        assert 0 <= min_cov <= mean_cov <= 2

    def test_gauges_travel_into_serialized_results(self):
        import json as _json

        sweep = SweepSpec(
            name="gauged",
            base=dict(
                tiny_base(),
                engine={
                    "trace_sample_every": 1,
                    "gauges": ["coverage"],
                    "gauge_every": 4,
                },
            ),
            seeds=(11,),
        )
        payload = _json.loads(run_sweep(sweep).to_json())
        series = payload["points"][0]["gauges"][0]["coverage"]
        assert series and series[0][0] == 4

    def test_rejects_unknown_gauge(self):
        payload = dict(tiny_base(), seed=11)
        payload["engine"] = {"gauges": ["entropy"]}
        with pytest.raises(ConfigurationError):
            execute_run(payload)


class TestRunSweep:
    def sweep(self) -> SweepSpec:
        return SweepSpec(
            name="parallel-eq",
            base=tiny_base(),
            grid={"algorithm": ["blindmatch", "sharedbit"]},
            seeds=(11, 23),
        )

    def test_serial_parallel_byte_identical(self):
        serial = run_sweep(self.sweep(), jobs=1)
        parallel = run_sweep(self.sweep(), jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_aggregation_in_sweep_order(self):
        result = run_sweep(self.sweep())
        assert [s.point["algorithm"] for s in result.points] == [
            "blindmatch", "sharedbit",
        ]
        for summary in result.points:
            assert summary.seeds == (11, 23)
            assert summary.all_solved
            assert summary.min_rounds <= summary.median_rounds
            assert summary.median_rounds <= summary.max_rounds

    def test_cache_miss_then_hit(self, tmp_path):
        first = run_sweep(self.sweep(), cache_dir=tmp_path)
        assert (first.cache_hits, first.cache_misses) == (0, 4)
        second = run_sweep(self.sweep(), cache_dir=tmp_path)
        assert (second.cache_hits, second.cache_misses) == (4, 0)
        assert first.to_json() == second.to_json()

    def test_cache_ignores_corrupt_entries(self, tmp_path):
        run_sweep(self.sweep(), cache_dir=tmp_path)
        victim = sorted(tmp_path.glob("*.json"))[0]
        victim.write_text("{not json")
        result = run_sweep(self.sweep(), cache_dir=tmp_path)
        assert result.cache_misses == 1
        assert result.cache_hits == 3

    def test_cache_distinguishes_specs(self, tmp_path):
        run_sweep(self.sweep(), cache_dir=tmp_path)
        other = SweepSpec(
            name="parallel-eq",
            base=tiny_base(max_rounds=29_999),
            grid={"algorithm": ["blindmatch", "sharedbit"]},
            seeds=(11, 23),
        )
        result = run_sweep(other, cache_dir=tmp_path)
        assert result.cache_hits == 0

    def test_table_carries_axes_and_notes(self):
        sweep = SweepSpec(
            name="noted",
            base=tiny_base(
                "crowdedbin",
                dynamic={"kind": "relabeling", "tau": 1},
                config={"preset": "practical"},
            ),
            seeds=(11,),
        )
        result = run_sweep(sweep)
        table = result.table()
        assert "crowdedbin needs stable topology" in table
        assert "median rounds" in table

    def test_point_for_short_keys(self):
        result = run_sweep(self.sweep())
        assert result.point_for(algorithm="sharedbit").all_solved
        with pytest.raises(ConfigurationError):
            result.point_for(algorithm="nope")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            run_sweep(self.sweep(), jobs=0)


class TestResultCacheUnit:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("run-abc", {"rounds": 3})
        assert cache.get("run-abc") == {"rounds": 3}

    def test_format_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "run-old.json").write_text(
            json.dumps({"format": 0, "record": {"rounds": 1}})
        )
        assert cache.get("run-old") is None


class TestPercentile:
    def test_median_and_edges(self):
        assert percentile([3, 1, 2], 50) == 2
        assert percentile([1, 2, 3, 4], 0) == 1
        assert percentile([1, 2, 3, 4], 100) == 4
        assert percentile([1, 3], 50) == 2.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 101)


class TestCli:
    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            SweepSpec(
                name="cli-sweep",
                base=tiny_base(),
                grid={"algorithm": ["blindmatch", "sharedbit"]},
                seeds=[11],
            ).to_json()
        )
        out_path = tmp_path / "out.json"
        code = main([
            "sweep",
            "--spec", str(spec_path),
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cli-sweep" in out
        assert "cache: 0 hits, 2 misses" in out
        payload = json.loads(out_path.read_text())
        assert payload["sweep"]["name"] == "cli-sweep"
        assert len(payload["points"]) == 2

    def test_compare_prints_substitution_note(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "--graph", "cycle", "--n", "8", "--k", "1",
            "--tau", "1", "--seed", "1", "--max-rounds", "100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "notes" in out
        assert CROWDEDBIN_TAU_NOTE in out
        # CrowdedBin's row shows the tau it actually ran with.
        crowded_row = next(
            line for line in out.splitlines() if "crowdedbin" in line
        )
        assert "inf" in crowded_row
