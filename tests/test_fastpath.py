"""Differential tests: the array fast path is byte-identical to the
reference object engine.

Every combination of {ppush, blindmatch, sharedbit} × {static,
relabeling, geometric} × all acceptance rules must produce the *same
trace* (every sampled record and every running total), the same final
token sets, and the same round count under ``engine_mode="object"`` and
``engine_mode="array"``.  This is the guarantee that lets every other
test and benchmark in the repo trust the fast path: same seeds, same
draws, same execution — just faster.

The case harness lives in :mod:`repro.experiments.fastpath` — the same
implementation benchmarks/bench_engine.py and CI's bench-smoke gate run,
so "byte-identical" means one thing everywhere.
"""

import numpy as np
import pytest

from repro.core.blindmatch import BlindMatchNode
from repro.core.ppush import PPushNode
from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes, run_gossip
from repro.errors import ConfigurationError
from repro.experiments.fastpath import (
    CHECK_ACCEPTANCES,
    CHECK_ASYNC_ALGORITHMS,
    CHECK_ASYNC_DYNAMICS,
    CHECK_DYNAMICS,
    CHECK_FAULTS,
    CHECK_TIMINGS,
    check_async_batched_identity,
    check_async_determinism,
    check_async_sync_identity,
    check_local_acceptance_identity,
    check_null_fault_identity,
    check_telemetry_identity,
    make_dynamics,
    run_case,
    trace_signature,
)
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star
from repro.rng import SeedTree
from repro.sim.engine import Simulation
from repro.sim.channel import ChannelPolicy
from repro.sim.protocol import bulk_hooks


class TestTraceForTraceEquality:
    @pytest.mark.parametrize("dynamics", CHECK_DYNAMICS)
    @pytest.mark.parametrize("acceptance", CHECK_ACCEPTANCES)
    def test_ppush(self, dynamics, acceptance):
        assert (
            run_case("ppush", dynamics, acceptance, "object", rounds=60)
            == run_case("ppush", dynamics, acceptance, "array", rounds=60)
        )

    @pytest.mark.parametrize("dynamics", CHECK_DYNAMICS)
    @pytest.mark.parametrize("acceptance", CHECK_ACCEPTANCES)
    def test_blindmatch(self, dynamics, acceptance):
        assert (
            run_case("blindmatch", dynamics, acceptance, "object",
                     rounds=120)
            == run_case("blindmatch", dynamics, acceptance, "array",
                        rounds=120)
        )

    @pytest.mark.parametrize("dynamics", CHECK_DYNAMICS)
    @pytest.mark.parametrize("acceptance", CHECK_ACCEPTANCES)
    def test_sharedbit(self, dynamics, acceptance):
        assert (
            run_case("sharedbit", dynamics, acceptance, "object",
                     rounds=120)
            == run_case("sharedbit", dynamics, acceptance, "array",
                        rounds=120)
        )


class TestTraceForTraceEqualityUnderFaults:
    """The fault-regime axis of the differential matrix: masked stages
    and the drop branch must stay byte-identical across both paths."""

    @pytest.mark.parametrize("fault", [f for f in CHECK_FAULTS
                                       if f != "none"])
    @pytest.mark.parametrize("dynamics", CHECK_DYNAMICS)
    def test_sharedbit(self, dynamics, fault):
        assert (
            run_case("sharedbit", dynamics, "uniform", "object",
                     rounds=60, fault=fault)
            == run_case("sharedbit", dynamics, "uniform", "array",
                        rounds=60, fault=fault)
        )

    @pytest.mark.parametrize("fault", [f for f in CHECK_FAULTS
                                       if f != "none"])
    @pytest.mark.parametrize("algorithm", ("ppush", "blindmatch"))
    def test_other_algorithms(self, algorithm, fault):
        assert (
            run_case(algorithm, "relabeling", "uniform", "object",
                     rounds=60, fault=fault)
            == run_case(algorithm, "relabeling", "uniform", "array",
                        rounds=60, fault=fault)
        )

    @pytest.mark.parametrize("acceptance", CHECK_ACCEPTANCES)
    def test_acceptance_rules_under_sleep(self, acceptance):
        assert (
            run_case("sharedbit", "static", acceptance, "object",
                     rounds=60, fault="sleep")
            == run_case("sharedbit", "static", acceptance, "array",
                        rounds=60, fault="sleep")
        )

    def test_null_fault_model_is_free(self):
        assert check_null_fault_identity(n=16, rounds=25) == []


class TestLocalAcceptanceStreams:
    """The live bridge's recording discipline: per-target match streams
    (``acceptance_streams="local"``) must be byte-identical across the
    object and array paths, or a recorded run would replay differently
    depending on which engine path recorded it (see repro.net.bridge)."""

    def test_local_streams_engine_mode_identity(self):
        assert check_local_acceptance_identity(n=16, rounds=25) == []

    def test_local_differs_from_global_when_contested(self):
        """The knob is real: on a contested topology the per-target
        draws differ from the global sequence.  (Not on the star: its
        hub proposes every round, so spoke proposals are lost and no
        target is ever contested — zero draws under either discipline.)
        """
        assert (
            run_case("sharedbit", "relabeling", "uniform", "object",
                     n=16, rounds=25, acceptance_streams="local")
            != run_case("sharedbit", "relabeling", "uniform", "object",
                        n=16, rounds=25)
        )


class TestAsyncAxis:
    """The ASYNC axis of the differential matrix: the event-driven
    engine under the synchronous null model must reproduce the round
    engine event for event, on both engine paths; jittered timing must
    be seed-deterministic."""

    @pytest.mark.parametrize("engine_mode", ("object", "array"))
    @pytest.mark.parametrize("dynamics", CHECK_ASYNC_DYNAMICS)
    @pytest.mark.parametrize("algorithm", CHECK_ASYNC_ALGORITHMS)
    def test_synchronous_timing_matches_round_engine(
        self, algorithm, dynamics, engine_mode
    ):
        assert (
            run_case(algorithm, dynamics, "uniform", engine_mode,
                     rounds=60)
            == run_case(algorithm, dynamics, "uniform", engine_mode,
                        rounds=60, timing="synchronous")
        )

    @pytest.mark.parametrize("acceptance", CHECK_ACCEPTANCES)
    def test_synchronous_timing_across_acceptance_rules(self, acceptance):
        assert (
            run_case("sharedbit", "relabeling", acceptance, "object",
                     rounds=60)
            == run_case("sharedbit", "relabeling", acceptance, "object",
                        rounds=60, timing="synchronous")
        )

    @pytest.mark.parametrize("fault", [f for f in CHECK_FAULTS
                                       if f != "none"])
    def test_synchronous_timing_composes_with_faults(self, fault):
        # Full synchronized cohorts under a fault regime must mirror the
        # round engine's masked stages and drop branch exactly.
        assert (
            run_case("sharedbit", "static", "uniform", "object",
                     rounds=60, fault=fault)
            == run_case("sharedbit", "static", "uniform", "object",
                        rounds=60, fault=fault, timing="synchronous")
        )

    def test_matrix_via_shared_harness(self):
        assert check_async_sync_identity(n=16, rounds=25) == []

    @pytest.mark.parametrize("timing", CHECK_TIMINGS)
    def test_jittered_timing_is_seed_deterministic(self, timing):
        assert (
            run_case("sharedbit", "geometric", "uniform", "object",
                     rounds=40, timing=timing)
            == run_case("sharedbit", "geometric", "uniform", "object",
                        rounds=40, timing=timing)
        )

    def test_determinism_via_shared_harness(self):
        assert check_async_determinism(n=16, rounds=25) == []

    def test_batched_identity_via_shared_harness(self):
        # The window-batching contract: per-event == batched, byte for
        # byte, through both engine front halves.
        assert check_async_batched_identity(n=16, rounds=25) == []

    @pytest.mark.parametrize("timing", CHECK_TIMINGS)
    def test_jittered_timing_changes_the_execution(self, timing):
        # The non-null models must actually desynchronize something —
        # otherwise the axis tests nothing.
        assert (
            run_case("sharedbit", "static", "uniform", "object",
                     rounds=40, timing=timing)
            != run_case("sharedbit", "static", "uniform", "object",
                        rounds=40)
        )


class TestTelemetryIdentity:
    """The observability axis: telemetry on == telemetry off, byte for
    byte — spans and counters observe a run, they never touch its
    randomness (DESIGN.md §11)."""

    def test_identity_via_shared_harness(self):
        assert check_telemetry_identity(n=16, rounds=25) == []

    def test_telemetry_on_matches_off_single_case(self):
        off = run_case("sharedbit", "geometric", "uniform", "array",
                       rounds=40)
        on = run_case("sharedbit", "geometric", "uniform", "array",
                      rounds=40, telemetry=True)
        assert off == on


class TestRunGossipEquality:
    """End to end through the standard harness, gauges included."""

    @pytest.mark.parametrize("algorithm", ("blindmatch", "sharedbit"))
    def test_full_run_identical(self, algorithm):
        outcomes = []
        from repro.core.runner import coverage_gauge

        for engine_mode in ("object", "array"):
            instance = uniform_instance(n=16, k=4, seed=3)
            result = run_gossip(
                algorithm,
                make_dynamics("relabeling", n=16, seed=3),
                instance,
                seed=3,
                max_rounds=5000,
                gauges={"coverage": coverage_gauge(instance.token_ids)},
                gauge_every=16,
                engine_mode=engine_mode,
            )
            assert result.solved
            outcomes.append(
                (
                    trace_signature(result.rounds, result.trace),
                    tuple(
                        tuple(sorted(node.known_tokens))
                        for node in result.nodes.values()
                    ),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_auto_mode_picks_array_for_bulk_nodes(self):
        instance = uniform_instance(n=8, k=2, seed=1)
        nodes = build_nodes("blindmatch", instance, seed=1)
        sim = Simulation(
            StaticDynamicGraph(star(8)), nodes, b=0, seed=1,
            channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        )
        assert sim.engine_mode == "array"

    def test_object_mode_forces_reference_path(self):
        instance = uniform_instance(n=8, k=2, seed=1)
        nodes = build_nodes("blindmatch", instance, seed=1)
        sim = Simulation(
            StaticDynamicGraph(star(8)), nodes, b=0, seed=1,
            channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
            engine_mode="object",
        )
        assert sim.engine_mode == "object"

    def test_array_mode_rejected_without_bulk_hooks(self):
        instance = uniform_instance(n=8, k=2, seed=1)
        nodes = build_nodes("crowdedbin", instance, seed=1)
        with pytest.raises(ConfigurationError):
            Simulation(
                StaticDynamicGraph(star(8)), nodes, b=1, seed=1,
                channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
                engine_mode="array",
            )


class TestBulkHookDetection:
    def test_mixed_population_falls_back(self):
        instance = uniform_instance(n=4, k=1, seed=1)
        blind = build_nodes("blindmatch", instance, seed=1)
        tree = SeedTree(1)
        mixed = dict(blind)
        mixed[3] = PPushNode(uid=blind[3].uid, upper_n=99,
                             rng=tree.stream("x"))
        assert bulk_hooks([mixed[v] for v in range(4)]) is None

    def test_subclass_overriding_scalar_hook_is_refused(self):
        class QuietBlindMatch(BlindMatchNode):
            def propose(self, round_index, neighbors):
                return None  # diverges from the inherited propose_all

        instance = uniform_instance(n=4, k=1, seed=1)
        tree = SeedTree(1)
        nodes = [
            QuietBlindMatch(uid=vertex + 1, upper_n=4, initial_tokens=(),
                            rng=tree.stream("node", vertex))
            for vertex in range(4)
        ]
        assert bulk_hooks(nodes) is None

    def test_subclass_refreshing_both_hooks_is_accepted(self):
        class LoudBlindMatch(BlindMatchNode):
            def propose(self, round_index, neighbors):
                return None

            @classmethod
            def propose_all(cls, nodes, round_index, csr, tags):
                return np.full(len(nodes), -1, dtype=np.int64)

        instance = uniform_instance(n=4, k=1, seed=1)
        tree = SeedTree(1)
        nodes = [
            LoudBlindMatch(uid=vertex + 1, upper_n=4, initial_tokens=(),
                           rng=tree.stream("node", vertex))
            for vertex in range(4)
        ]
        assert bulk_hooks(nodes) is not None

    def test_subclass_overriding_scalar_helper_is_refused(self):
        # advertisement_bit is a helper the scalar advertise calls; the
        # inherited bulk advertise_all computes the parity inline and
        # would never see this override — so the population must fall
        # back to the object path instead of silently diverging.
        from repro.core.sharedbit import SharedBitConfig, SharedBitNode
        from repro.rng import SharedRandomness

        class QuietSharedBit(SharedBitNode):
            def advertisement_bit(self, round_index):
                return 0

        shared = SharedRandomness.from_seed(1, 8)
        tree = SeedTree(5)
        nodes = [
            QuietSharedBit(
                uid=vertex + 1, upper_n=8, initial_tokens=(),
                rng=tree.stream("node", vertex), shared=shared,
                config=SharedBitConfig(),
            )
            for vertex in range(4)
        ]
        assert bulk_hooks(nodes) is None

    def test_sharedbit_bulk_ready_rejects_mismatched_shared_strings(self):
        from repro.core.sharedbit import SharedBitConfig, SharedBitNode
        from repro.rng import SharedRandomness

        tree = SeedTree(5)
        nodes = [
            SharedBitNode(
                uid=vertex + 1,
                upper_n=8,
                initial_tokens=(),
                rng=tree.stream("node", vertex),
                shared=SharedRandomness.from_seed(vertex, 8),  # all differ
                config=SharedBitConfig(),
            )
            for vertex in range(4)
        ]
        assert bulk_hooks(nodes) is None


class _IslandDynamicGraph:
    """Helper factory: a path on 0..n-2 plus an isolated vertex n-1.

    In-tree dynamics always produce connected graphs, but the dynamics
    ABC is a plugin surface and nothing forces connectivity on
    out-of-tree subclasses — the object path tolerates isolated
    vertices, so the array path must too (regression: segment reductions
    over empty CSR rows)."""

    def __new__(cls, n: int):
        import networkx as nx

        from repro.graphs.dynamic import DynamicGraph, TAU_INFINITY

        class Island(DynamicGraph):
            def __init__(self):
                super().__init__(n=n, tau=TAU_INFINITY)
                graph = nx.path_graph(n - 1)
                graph.add_node(n - 1)
                self._graph = graph

            def _graph_for_epoch(self, epoch):
                return self._graph

        return Island()


class TestZeroDegreeVertices:
    def _ppush_sim(self, rumor_vertex: int, engine_mode: str, n: int = 6):
        from repro.core.tokens import Token

        tree = SeedTree(3)
        nodes = {
            vertex: PPushNode(
                uid=vertex + 1, upper_n=n,
                rng=tree.stream("node", vertex + 1),
                rumor=Token(1) if vertex == rumor_vertex else None,
            )
            for vertex in range(n)
        }
        sim = Simulation(_IslandDynamicGraph(n), nodes, b=1, seed=3,
                         engine_mode=engine_mode)
        sim.run(max_rounds=20)
        return trace_signature(sim.current_round, sim.trace)

    def test_trailing_isolated_vertex_matches_reference(self):
        assert self._ppush_sim(0, "object") == self._ppush_sim(0, "array")

    def test_informed_isolated_vertex_matches_reference(self):
        # The isolated vertex holds the rumor: it advertises 1 but has no
        # neighbors, so neither path may draw or propose for it.
        n = 6
        assert (
            self._ppush_sim(n - 1, "object")
            == self._ppush_sim(n - 1, "array")
        )

    def test_isolated_proposer_rejected_on_array_path(self):
        class RogueBlindMatch(BlindMatchNode):
            @classmethod
            def advertise_all(cls, nodes, round_index, csr):
                return np.zeros(len(nodes), dtype=np.int64)

            @classmethod
            def propose_all(cls, nodes, round_index, csr, tags):
                targets = np.full(len(nodes), -1, dtype=np.int64)
                # The isolated vertex proposes: illegal, no neighbors.
                targets[-1] = nodes[0].uid
                return targets

        from repro.errors import ProtocolViolationError

        n = 5
        tree = SeedTree(4)
        nodes = {
            vertex: RogueBlindMatch(
                uid=vertex + 1, upper_n=n, initial_tokens=(),
                rng=tree.stream("node", vertex),
            )
            for vertex in range(n)
        }
        sim = Simulation(_IslandDynamicGraph(n), nodes, b=0, seed=4,
                         engine_mode="array")
        with pytest.raises(ProtocolViolationError):
            sim.step()


class TestEngineEnforcementOnArrayPath:
    def test_bad_tag_rejected(self):
        class BadTagBlindMatch(BlindMatchNode):
            @classmethod
            def advertise_all(cls, nodes, round_index, csr):
                return np.full(len(nodes), 7, dtype=np.int64)

            @classmethod
            def propose_all(cls, nodes, round_index, csr, tags):
                return np.full(len(nodes), -1, dtype=np.int64)

        tree = SeedTree(2)
        nodes = {
            vertex: BadTagBlindMatch(
                uid=vertex + 1, upper_n=6, initial_tokens=(),
                rng=tree.stream("node", vertex),
            )
            for vertex in range(6)
        }
        sim = Simulation(StaticDynamicGraph(star(6)), nodes, b=0, seed=2,
                         engine_mode="array")
        from repro.errors import ProtocolViolationError

        with pytest.raises(ProtocolViolationError):
            sim.step()

    def test_float_tag_array_rejected(self):
        # The object path rejects non-int tags via isinstance; the array
        # path must not let a float array be silently truncated instead.
        class FloatTagBlindMatch(BlindMatchNode):
            @classmethod
            def advertise_all(cls, nodes, round_index, csr):
                return np.zeros(len(nodes))  # float64

            @classmethod
            def propose_all(cls, nodes, round_index, csr, tags):
                return np.full(len(nodes), -1, dtype=np.int64)

        tree = SeedTree(2)
        nodes = {
            vertex: FloatTagBlindMatch(
                uid=vertex + 1, upper_n=6, initial_tokens=(),
                rng=tree.stream("node", vertex),
            )
            for vertex in range(6)
        }
        sim = Simulation(StaticDynamicGraph(star(6)), nodes, b=0, seed=2,
                         engine_mode="array")
        from repro.errors import ProtocolViolationError

        with pytest.raises(ProtocolViolationError):
            sim.step()

    def test_non_neighbor_proposal_rejected(self):
        class RogueBlindMatch(BlindMatchNode):
            @classmethod
            def advertise_all(cls, nodes, round_index, csr):
                return np.zeros(len(nodes), dtype=np.int64)

            @classmethod
            def propose_all(cls, nodes, round_index, csr, tags):
                targets = np.full(len(nodes), -1, dtype=np.int64)
                # Vertex 1 proposes to vertex 2's uid — on a star only
                # the hub (vertex 0) is a legal target for a leaf.
                targets[1] = nodes[2].uid
                return targets

        tree = SeedTree(2)
        nodes = {
            vertex: RogueBlindMatch(
                uid=vertex + 1, upper_n=6, initial_tokens=(),
                rng=tree.stream("node", vertex),
            )
            for vertex in range(6)
        }
        sim = Simulation(StaticDynamicGraph(star(6)), nodes, b=0, seed=2,
                         engine_mode="array")
        from repro.errors import ProtocolViolationError

        with pytest.raises(ProtocolViolationError):
            sim.step()
