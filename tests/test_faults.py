"""Tests for the fault layer: model semantics, determinism, and the
engine integration on both paths.

The load-bearing guarantees:

* every fault decision is a pure function of (seed, round) — identical
  across engine modes, re-runs, replays, and ``run_sweep --jobs`` values;
* the null model (``NoFaults`` / no model at all) consumes zero
  randomness and leaves traces byte-identical to the pre-fault engine;
* inactive vertices are invisible for the round: no advertising, no
  proposals to or from them, no connections;
* dropped matches never reach Stage 3.
"""

import numpy as np
import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes, run_gossip
from repro.errors import ConfigurationError
from repro.experiments import SweepSpec, execute_run, run_sweep
from repro.experiments.fastpath import (
    check_null_fault_identity,
    make_dynamics,
    run_case,
    trace_signature,
)
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star
from repro.registry import FAULT_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.faults import CrashChurn, LossyLinks, NoFaults, SleepCycle


class TestNoFaults:
    def test_is_null_and_maskless(self):
        model = NoFaults(8, 3)
        assert model.is_null
        assert model.active_mask(1) is None
        assert not model.drop_connection(1, 1, 2)

    def test_null_model_is_byte_identical_to_no_model(self):
        assert check_null_fault_identity(n=12, rounds=20) == []


class TestSleepCycle:
    def test_mask_shape_and_duty(self):
        model = SleepCycle(n=50, seed=1, period=8, duty=6)
        mask = model.active_mask(1)
        assert mask.shape == (50,)
        assert mask.dtype == bool
        # Over one full period every node is awake exactly `duty` rounds.
        awake = sum(model.active_mask(r).sum() for r in range(1, 9))
        assert awake == 50 * 6

    def test_full_duty_is_maskless(self):
        model = SleepCycle(n=10, seed=1, period=4, duty=4)
        assert model.active_mask(3) is None

    def test_deterministic_across_instances(self):
        a = SleepCycle(n=30, seed=7, period=8, duty=3)
        b = SleepCycle(n=30, seed=7, period=8, duty=3)
        for r in (1, 5, 13, 100):
            assert np.array_equal(a.active_mask(r), b.active_mask(r))

    def test_unstaggered_sleeps_in_lockstep(self):
        model = SleepCycle(n=20, seed=1, period=4, duty=2, stagger=False)
        for r in (1, 2):
            assert model.active_mask(r).all()
        for r in (3, 4):
            assert not model.active_mask(r).any()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SleepCycle(n=5, seed=0, period=0)
        with pytest.raises(ConfigurationError):
            SleepCycle(n=5, seed=0, period=4, duty=0)
        with pytest.raises(ConfigurationError):
            SleepCycle(n=5, seed=0, period=4, duty=5)


class TestCrashChurn:
    def test_deterministic_and_order_independent(self):
        a = CrashChurn(n=40, seed=5, cycle=16, crash_prob=0.5,
                       min_outage=2, max_outage=8)
        b = CrashChurn(n=40, seed=5, cycle=16, crash_prob=0.5,
                       min_outage=2, max_outage=8)
        rounds = [1, 30, 7, 64, 2, 100]  # deliberately out of order
        expected = {r: a.active_mask(r) for r in sorted(rounds)}
        for r in rounds:  # b queried out of order: same masks
            assert np.array_equal(b.active_mask(r), expected[r])

    def test_outages_are_contiguous_within_window(self):
        model = CrashChurn(n=20, seed=3, cycle=12, crash_prob=0.9,
                           min_outage=3, max_outage=5)
        masks = np.stack([model.active_mask(r) for r in range(1, 13)])
        for vertex in range(20):
            down = np.nonzero(~masks[:, vertex])[0]
            if down.size:
                assert down[-1] - down[0] + 1 == down.size  # one interval
                assert down.size <= 5

    def test_crashed_this_round_matches_mask_transition(self):
        model = CrashChurn(n=25, seed=9, cycle=10, crash_prob=0.7,
                           min_outage=2, max_outage=4)
        prev = np.ones(25, dtype=bool)
        for r in range(1, 31):
            mask = model.active_mask(r)
            newly_down = np.nonzero(prev & ~mask)[0]
            # every active->inactive transition is a registered crash
            # start (the converse can fail at window edges, where two
            # independent outages may run back to back).
            assert set(newly_down) <= set(model.crashed_this_round(r))
            prev = mask

    def test_some_nodes_crash_and_rejoin(self):
        model = CrashChurn(n=30, seed=1, cycle=10, crash_prob=0.8,
                           min_outage=2, max_outage=4)
        masks = np.stack([model.active_mask(r) for r in range(1, 11)])
        assert (~masks).any()           # somebody crashed
        assert masks[-1].sum() > 0      # and the crowd is not empty
        # rejoin: every outage of length <= 4 in a 10-round window ends.
        assert masks.all(axis=0).sum() < 30


class TestLossyLinks:
    def test_no_mask(self):
        assert LossyLinks(n=10, seed=1).active_mask(5) is None

    def test_drop_rate_roughly_matches(self):
        model = LossyLinks(n=10, seed=2, drop_prob=0.3)
        draws = [
            model.drop_connection(r, u, v)
            for r in range(1, 40)
            for (u, v) in ((1, 2), (3, 4), (5, 6))
        ]
        rate = sum(draws) / len(draws)
        assert 0.15 < rate < 0.45

    def test_draw_depends_only_on_round_and_pair(self):
        a = LossyLinks(n=10, seed=2, drop_prob=0.5)
        b = LossyLinks(n=10, seed=2, drop_prob=0.5)
        # b queried in a different order: same answers.
        queries = [(5, 1, 2), (1, 3, 4), (9, 1, 2), (5, 3, 4)]
        expected = {q: a.drop_connection(*q) for q in queries}
        for q in reversed(queries):
            assert b.drop_connection(*q) == expected[q]

    def test_zero_prob_never_draws(self):
        model = LossyLinks(n=10, seed=2, drop_prob=0.0)
        assert not any(
            model.drop_connection(r, 1, 2) for r in range(1, 50)
        )


class TestRegistry:
    def test_all_builtin_faults_registered(self):
        for name in ("none", "sleep", "churn", "lossy"):
            assert name in FAULT_REGISTRY

    def test_build_with_params(self):
        model = FAULT_REGISTRY.get("sleep").build(12, 3, period=6, duty=2)
        assert isinstance(model, SleepCycle)
        assert model.period == 6 and model.duty == 2

    def test_unknown_fault_enumerates(self):
        with pytest.raises(ConfigurationError, match="sleep"):
            FAULT_REGISTRY.get("flood")


def _faulty_sim(fault, engine_mode, n=18, seed=11, rounds=40):
    instance = uniform_instance(n=n, k=3, seed=seed)
    nodes = build_nodes("sharedbit", instance, seed=seed)
    sim = Simulation(
        make_dynamics("relabeling", n, seed), nodes, b=1, seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        engine_mode=engine_mode, faults=fault,
    )
    sim.run(max_rounds=rounds)
    return sim


class TestEngineIntegration:
    def test_mask_size_mismatch_rejected(self):
        instance = uniform_instance(n=8, k=1, seed=1)
        nodes = build_nodes("sharedbit", instance, seed=1)
        with pytest.raises(ConfigurationError, match="n=6"):
            Simulation(
                StaticDynamicGraph(star(8)), nodes, b=1, seed=1,
                channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
                faults=SleepCycle(n=6, seed=1),
            )

    def test_trace_columns_track_activity_and_drops(self):
        sleep = _faulty_sim(SleepCycle(n=18, seed=11, period=4, duty=2),
                            "object")
        actives = [value for _, value in
                   sleep.trace.column_series("active_nodes")]
        assert all(0 <= value <= 18 for value in actives)
        assert any(value < 18 for value in actives)

        lossy = _faulty_sim(LossyLinks(n=18, seed=11, drop_prob=0.5),
                            "object")
        assert lossy.trace.total_dropped_connections > 0
        assert all(value == 18 for _, value in
                   lossy.trace.column_series("active_nodes"))

    def test_clean_trace_reports_full_activity(self):
        sim = _faulty_sim(None, "object", rounds=10)
        assert all(value == 18 for _, value in
                   sim.trace.column_series("active_nodes"))
        assert sim.trace.total_dropped_connections == 0

    @pytest.mark.parametrize("fault_kind", ("sleep", "churn", "lossy"))
    def test_object_and_array_paths_identical(self, fault_kind):
        assert (
            run_case("sharedbit", "geometric", "uniform", "object",
                     rounds=50, fault=fault_kind)
            == run_case("sharedbit", "geometric", "uniform", "array",
                        rounds=50, fault=fault_kind)
        )

    def test_sleeping_vertices_form_no_connections(self):
        # With an unstaggered sleep cycle the whole crowd is asleep on
        # rounds 3-4 of every period: those rounds must show zero
        # proposals and zero connections.
        fault = SleepCycle(n=18, seed=11, period=4, duty=2, stagger=False)
        sim = _faulty_sim(fault, "object", rounds=20)
        for record in sim.trace.records:
            phase = (record.round_index - 1) % 4
            if phase >= 2:
                assert record.active_nodes == 0
                assert record.proposals == 0
                assert record.connections == 0

    def test_crash_reset_drops_learned_tokens(self):
        # Aggressive churn with reset: at least one node that had learned
        # extra tokens crashes, so coverage regresses below what the
        # retained-state variant keeps.
        n, seed = 16, 5

        def total_known(reset):
            instance = uniform_instance(n=n, k=4, seed=seed)
            nodes = build_nodes("sharedbit", instance, seed=seed)
            fault = CrashChurn(n=n, seed=seed, cycle=10, crash_prob=0.9,
                               min_outage=3, max_outage=6,
                               reset_tokens=reset)
            sim = Simulation(
                make_dynamics("static", n, seed), nodes, b=1, seed=seed,
                channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
                faults=fault,
            )
            sim.run(max_rounds=12)
            return sum(
                len(node.known_tokens) for node in sim.protocols.values()
            )

        assert total_known(reset=True) < total_known(reset=False)

    def test_back_to_back_crash_across_window_edge_still_resets(self):
        # Regression: a crash can start the instant a previous outage
        # ends (the old outage ran to its window's edge, the new window
        # begins with start=0).  The node never wakes in between, so a
        # mask-transition diff sees nothing — the engine must follow the
        # model's crashed_this_round report instead.
        model = None
        boundary = None
        for seed in range(40):
            candidate = CrashChurn(n=24, seed=seed, cycle=6,
                                   crash_prob=0.8, min_outage=3,
                                   max_outage=6, reset_tokens=True)
            prev = np.ones(24, dtype=bool)
            for r in range(1, 31):
                mask = candidate.active_mask(r)
                reported = set(candidate.crashed_this_round(r))
                transitions = set(np.nonzero(prev & ~mask)[0])
                if reported - transitions:
                    model = candidate
                    boundary = (r, sorted(reported - transitions))
                    break
                prev = mask
            if model is not None:
                break
        assert model is not None, "no boundary crash found in 40 seeds"
        round_index, hidden = boundary

        instance = uniform_instance(n=24, k=2, seed=1)
        nodes = build_nodes("sharedbit", instance, seed=1)
        resets: list[int] = []
        for vertex, node in nodes.items():
            original = node.reset_tokens

            def spy(vertex=vertex, original=original):
                resets.append(vertex)
                return original()

            node.reset_tokens = spy
        sim = Simulation(
            make_dynamics("static", 24, 1), nodes, b=1, seed=1,
            channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
            faults=model,
        )
        for _ in range(round_index):
            sim.step()
        assert set(hidden) <= set(resets)

    def test_run_gossip_accepts_name_dict_and_model(self):
        instance = uniform_instance(n=12, k=2, seed=3)
        results = []
        for fault in (
            "lossy",
            {"kind": "lossy", "drop_prob": 0.2},
            LossyLinks(n=12, seed=3, drop_prob=0.2),
        ):
            result = run_gossip(
                "sharedbit", make_dynamics("static", 12, 3),
                uniform_instance(n=12, k=2, seed=3), seed=3,
                max_rounds=5000, fault=fault,
            )
            assert result.solved
            results.append(
                (result.rounds, result.trace.total_dropped_connections)
            )
        # name-with-defaults and explicit defaults agree; the dict and
        # model forms are the same configuration, so identical runs.
        assert results[0] == results[1] == results[2]
        assert instance.n == 12


class TestSweepDeterminism:
    def _sweep(self):
        return SweepSpec(
            name="faulty",
            base={
                "algorithm": "sharedbit",
                "graph": {"family": "cycle", "params": {"n": 10}},
                "instance": {"kind": "uniform", "k": 2},
                "fault": {"kind": "sleep", "period": 4},
                "max_rounds": 30_000,
                "engine": {"trace_sample_every": 256},
            },
            grid={"fault.duty": [2, 4]},
            seeds=(11, 23),
        )

    def test_fault_axis_sweeps_like_any_dotted_key(self):
        sweep = self._sweep()
        duties = [payload["fault"]["duty"]
                  for _, _, _, payload in sweep.runs()]
        assert duties == [2, 2, 4, 4]

    def test_parallel_equals_serial_byte_for_byte(self):
        serial = run_sweep(self._sweep(), jobs=1)
        parallel = run_sweep(self._sweep(), jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_execute_run_records_drops(self):
        record = execute_run({
            "algorithm": "sharedbit",
            "graph": {"family": "cycle", "params": {"n": 10}},
            "instance": {"kind": "uniform", "k": 1},
            "fault": {"kind": "lossy", "drop_prob": 0.4},
            "seed": 11,
            "max_rounds": 30_000,
        })
        assert record["solved"]
        assert record["dropped_connections"] > 0

    def test_execute_hook_algorithms_reject_faults(self):
        with pytest.raises(ConfigurationError, match="fault"):
            execute_run({
                "algorithm": "epsilon",
                "graph": {"family": "cycle", "params": {"n": 10}},
                "fault": {"kind": "lossy"},
                "config": {"epsilon": 0.5},
                "seed": 1,
                "max_rounds": 10_000,
            })

    def test_fault_block_round_trips_and_hashes(self):
        sweep = self._sweep()
        payload = sweep.runs()[0][3]
        from repro.experiments.specs import RunSpec, run_hash

        spec = RunSpec.from_payload(payload)
        assert spec.fault == {"kind": "sleep", "period": 4, "duty": 2}
        again = RunSpec.from_payload(spec.to_payload())
        assert run_hash(again.to_payload()) == run_hash(spec.to_payload())
        clean = dict(payload)
        clean["fault"] = {"kind": "none"}
        assert run_hash(clean) != run_hash(payload)
