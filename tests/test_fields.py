"""Tests for prime-field utilities used by EQTest."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commcplx.fields import eval_set_polynomial, is_prime, next_prime


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 91, 7917, 7921):
            assert not is_prime(c)

    def test_carmichael_numbers(self):
        # Classic Fermat pseudoprimes must be rejected.
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(c)

    def test_larger_primes(self):
        assert is_prime(2**31 - 1)  # Mersenne prime
        assert not is_prime(2**32 + 1)  # 641 * 6700417


class TestNextPrime:
    def test_basic(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_strictly_greater(self):
        assert next_prime(11) == 13

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=100, deadline=None)
    def test_result_prime_and_greater(self, value):
        p = next_prime(value)
        assert p > value
        assert is_prime(p)


class TestEvalSetPolynomial:
    def test_empty_set_is_zero(self):
        assert eval_set_polynomial([], 5, 101) == 0

    def test_singleton(self):
        # P_{3}(x) = x^3.
        assert eval_set_polynomial([3], 2, 101) == 8

    def test_sum_of_powers(self):
        # P_{1,2}(x) = x + x^2 at x=3 mod 101 -> 12.
        assert eval_set_polynomial([1, 2], 3, 101) == 12

    def test_order_irrelevant(self):
        a = eval_set_polynomial([5, 1, 9], 7, 211)
        b = eval_set_polynomial([9, 5, 1], 7, 211)
        assert a == b

    def test_distinct_sets_differ_somewhere(self):
        prime = next_prime(64)
        set_a, set_b = [1, 2, 3], [1, 2, 4]
        differs = any(
            eval_set_polynomial(set_a, x, prime)
            != eval_set_polynomial(set_b, x, prime)
            for x in range(prime)
        )
        assert differs

    def test_rejects_negative_elements(self):
        with pytest.raises(ValueError):
            eval_set_polynomial([-1], 2, 101)

    def test_rejects_bad_prime(self):
        with pytest.raises(ValueError):
            eval_set_polynomial([1], 2, 1)


@given(
    st.sets(st.integers(min_value=0, max_value=60), max_size=20),
    st.sets(st.integers(min_value=0, max_value=60), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_distinct_sets_agree_on_few_points(set_a, set_b):
    """Soundness core: distinct sets agree on <= max_element points."""
    if set_a == set_b:
        return
    prime = next_prime(2 * 64)
    agreements = sum(
        1
        for x in range(prime)
        if eval_set_polynomial(set_a, x, prime)
        == eval_set_polynomial(set_b, x, prime)
    )
    assert agreements <= 60  # degree bound
