"""Integration tests: every algorithm, end to end, under model enforcement.

Because every run uses strict channel policies (O(1) tokens, polylog N
control bits per connection) and the engine validates tags and proposals,
a successful run here certifies both that the algorithm *solves gossip*
and that it *stays inside the mobile telephone model*.
"""

import pytest

from repro.core.crowdedbin import CrowdedBinConfig
from repro.core.potential import potential
from repro.core.problem import skewed_instance, uniform_instance
from repro.core.runner import ALGORITHMS, potential_gauge, run_gossip
from repro.graphs.dynamic import (
    PeriodicRewireGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
)
from repro.graphs.topologies import cycle, double_star, expander, grid, path

MAX_ROUNDS = {
    "blindmatch": 120_000,
    "sharedbit": 60_000,
    "simsharedbit": 120_000,
    "crowdedbin": 400_000,
    "multibit": 60_000,
    "ppush": 60_000,
}

#: PPUSH spreads exactly one rumor; every other algorithm solves full
#: k-token gossip.  Tests that place k >= 2 tokens iterate this view.
MULTI_TOKEN_ALGORITHMS = tuple(a for a in ALGORITHMS if a != "ppush")


def run_one(algorithm, dynamic_graph, instance, seed):
    kwargs = dict(
        max_rounds=MAX_ROUNDS[algorithm],
        termination_every=16 if algorithm == "crowdedbin" else 1,
        trace_sample_every=256,
    )
    if algorithm == "crowdedbin":
        kwargs["config"] = CrowdedBinConfig.practical()
    return run_gossip(algorithm, dynamic_graph, instance, seed=seed, **kwargs)


class TestAllAlgorithmsStaticTopologies:
    @pytest.mark.parametrize("algorithm", MULTI_TOKEN_ALGORITHMS)
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: path(10),
            lambda: cycle(12),
            lambda: expander(16, 4, seed=3),
            lambda: grid(3, 4),
        ],
        ids=["path10", "cycle12", "expander16", "grid3x4"],
    )
    def test_solves_and_obeys_budgets(self, algorithm, topo_factory):
        topo = topo_factory()
        inst = uniform_instance(n=topo.n, k=2, seed=13)
        result = run_one(algorithm, StaticDynamicGraph(topo), inst, seed=13)
        assert result.solved, f"{algorithm} failed on {topo.name}"
        assert result.residual_potential == 0


class TestDynamicTopologies:
    @pytest.mark.parametrize(
        "algorithm", ["blindmatch", "sharedbit", "simsharedbit"]
    )
    def test_fully_dynamic_relabeling(self, algorithm):
        topo = expander(12, 4, seed=2)
        inst = uniform_instance(n=12, k=2, seed=5)
        result = run_one(
            algorithm, RelabelingAdversary(topo, tau=1, seed=7), inst, seed=5
        )
        assert result.solved

    @pytest.mark.parametrize(
        "algorithm", ["blindmatch", "sharedbit", "simsharedbit"]
    )
    def test_periodic_rewire(self, algorithm):
        dg = PeriodicRewireGraph.resampled_gnp(12, 0.35, tau=4, seed=3)
        inst = uniform_instance(n=12, k=2, seed=6)
        result = run_one(algorithm, dg, inst, seed=6)
        assert result.solved

    def test_blindmatch_on_dynamic_double_star(self):
        """The paper's hard instance for blind strategies — must still
        solve, just slowly (the Δ² cost is measured in the benchmarks)."""
        topo = double_star(4)  # n=10
        inst = uniform_instance(n=10, k=1, seed=2)
        result = run_one(
            "blindmatch", RelabelingAdversary(topo, tau=1, seed=3), inst,
            seed=2,
        )
        assert result.solved


class TestInvariants:
    @pytest.mark.parametrize("algorithm", MULTI_TOKEN_ALGORITHMS)
    def test_potential_never_increases(self, algorithm):
        topo = expander(12, 4, seed=1)
        inst = uniform_instance(n=12, k=3, seed=9)
        kwargs = dict(
            max_rounds=MAX_ROUNDS[algorithm],
            gauges={"phi": potential_gauge(inst.token_ids)},
            gauge_every=8,
            termination_every=16 if algorithm == "crowdedbin" else 1,
            trace_sample_every=256,
        )
        if algorithm == "crowdedbin":
            kwargs["config"] = CrowdedBinConfig.practical()
        result = run_gossip(
            algorithm, StaticDynamicGraph(topo), inst, seed=9, **kwargs
        )
        assert result.solved
        series = [v for _, v in result.trace.gauge_series("phi")]
        assert all(a >= b for a, b in zip(series, series[1:]))

    @pytest.mark.parametrize("algorithm", MULTI_TOKEN_ALGORITHMS)
    def test_tokens_are_black_boxes(self, algorithm):
        """Sentinel payloads arrive intact at every node — algorithms never
        synthesize or alter token contents."""
        topo = cycle(10)
        inst = uniform_instance(n=10, k=2, seed=21)
        expected = {
            t.token_id: t.payload
            for ts in inst.initial_tokens.values()
            for t in ts
        }
        result = run_one(algorithm, StaticDynamicGraph(topo), inst, seed=21)
        assert result.solved
        for node in result.nodes.values():
            for token_id, payload in expected.items():
                assert node.token(token_id).payload == payload

    @pytest.mark.parametrize(
        "algorithm", ["blindmatch", "sharedbit", "simsharedbit"]
    )
    def test_multi_token_holders(self, algorithm):
        """The paper allows one node to start with several tokens."""
        inst = skewed_instance(n=12, k=4, seed=3, holders=1)
        topo = expander(12, 4, seed=4)
        result = run_one(algorithm, StaticDynamicGraph(topo), inst, seed=3)
        assert result.solved

    def test_crowdedbin_multi_token_holders(self):
        inst = skewed_instance(n=12, k=3, seed=3, holders=1)
        topo = expander(12, 4, seed=4)
        result = run_one("crowdedbin", StaticDynamicGraph(topo), inst, seed=3)
        assert result.solved

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_token_rumor_spreading(self, algorithm):
        """k = 1 degenerates gossip to rumor spreading; all must handle it."""
        topo = cycle(8)
        inst = uniform_instance(n=8, k=1, seed=17)
        result = run_one(algorithm, StaticDynamicGraph(topo), inst, seed=17)
        assert result.solved

    def test_connection_counts_consistent(self):
        topo = expander(16, 4, seed=2)
        inst = uniform_instance(n=16, k=2, seed=11)
        result = run_one("sharedbit", StaticDynamicGraph(topo), inst, seed=11)
        trace = result.trace
        # Each connection involves 2 nodes and each node has at most one
        # connection per round, so connections <= n/2 per round.
        assert trace.total_connections <= trace.total_rounds * (16 // 2)
        # Tokens can only move through connections.
        assert trace.total_tokens_moved <= trace.total_connections
