"""Tests for BitConvergence leader election: the interface §5.2 relies on."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.graphs.dynamic import (
    PeriodicRewireGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
)
from repro.graphs.topologies import cycle, expander, path, star
from repro.leader.bitconvergence import (
    BitConvergence,
    LeaderConfig,
    LeaderElectionNode,
    run_leader_election,
)
from repro.sim.channel import Channel, ChannelPolicy


def make_pair(uid_a=5, uid_b=3):
    a = BitConvergence(uid=uid_a, payload=10, upper_n=16,
                       rng=random.Random(0))
    b = BitConvergence(uid=uid_b, payload=20, upper_n=16,
                       rng=random.Random(1))
    return a, b


class TestMerge:
    def test_interact_converges_to_minimum(self):
        a, b = make_pair()
        channel = Channel(1, 5, 3, ChannelPolicy(max_control_bits=10**6))
        a.interact(b, channel)
        assert a.candidate_uid == 3
        assert b.candidate_uid == 3

    def test_payload_travels_with_candidate(self):
        a, b = make_pair()
        channel = Channel(1, 5, 3, ChannelPolicy(max_control_bits=10**6))
        a.interact(b, channel)
        assert a.candidate_payload == 20  # b's payload won

    def test_equal_candidates_noop(self):
        a, _ = make_pair()
        c = BitConvergence(uid=9, payload=30, upper_n=16,
                           rng=random.Random(2))
        channel = Channel(1, 5, 9, ChannelPolicy(max_control_bits=10**6))
        c._adopt(a.candidate_uid, a.candidate_payload)
        a.interact(c, channel)
        assert a.candidate_uid == c.candidate_uid == 5

    def test_candidate_monotone_nonincreasing(self):
        a, b = make_pair()
        channel = Channel(1, 5, 3, ChannelPolicy(max_control_bits=10**6))
        history = [a.candidate_uid]
        a.interact(b, channel)
        history.append(a.candidate_uid)
        assert history == sorted(history, reverse=True)

    def test_bits_charged(self):
        a, b = make_pair()
        channel = Channel(1, 5, 3, ChannelPolicy(max_control_bits=10**6))
        a.interact(b, channel)
        assert channel.bits.total_bits > 0


class TestNews:
    def test_fresh_node_has_news(self):
        a, _ = make_pair()
        assert a.advertise() == 1

    def test_news_expires(self):
        config = LeaderConfig(news_window=3)
        a = BitConvergence(uid=5, payload=0, upper_n=16,
                           rng=random.Random(0), config=config)
        bits = [a.advertise() for _ in range(6)]
        assert bits[:2] == [1, 1]
        assert bits[3:] == [0, 0, 0]

    def test_adoption_renews_news(self):
        config = LeaderConfig(news_window=3)
        a = BitConvergence(uid=5, payload=0, upper_n=16,
                           rng=random.Random(0), config=config)
        for _ in range(5):
            a.advertise()
        assert not a.has_news
        a._adopt(2, 0)
        assert a.advertise() == 1


class TestValidation:
    def test_payload_must_fit_budget(self):
        with pytest.raises(ConfigurationError):
            BitConvergence(uid=1, payload=2**80, upper_n=16,
                           rng=random.Random(0),
                           config=LeaderConfig(payload_bits=64))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LeaderConfig(news_window=0)
        with pytest.raises(ConfigurationError):
            LeaderConfig(blind_send_probability=0.0)


class TestElection:
    @pytest.mark.parametrize(
        "topo", [path(10), cycle(12), star(10), expander(16, 4, seed=1)],
        ids=["path", "cycle", "star", "expander"],
    )
    def test_converges_to_minimum_uid_static(self, topo):
        uids = list(range(1, topo.n + 1))
        random.Random(4).shuffle(uids)
        result = run_leader_election(
            StaticDynamicGraph(topo), uids=uids, seed=2, max_rounds=20_000
        )
        assert result.terminated
        leaders = {node.candidate_leader for node in result.nodes.values()}
        assert leaders == {1}

    def test_converges_on_fully_dynamic_graph(self):
        topo = expander(16, 4, seed=3)
        uids = list(range(1, 17))
        result = run_leader_election(
            RelabelingAdversary(topo, tau=1, seed=5),
            uids=uids,
            seed=2,
            max_rounds=40_000,
        )
        assert result.terminated
        assert {n.candidate_leader for n in result.nodes.values()} == {1}

    def test_converges_on_rewired_graph(self):
        result = run_leader_election(
            PeriodicRewireGraph.resampled_gnp(14, 0.3, tau=4, seed=1),
            uids=list(range(1, 15)),
            seed=2,
            max_rounds=40_000,
        )
        assert result.terminated

    def test_payload_of_winner_disseminated(self):
        topo = cycle(10)
        uids = list(range(1, 11))
        payloads = [100 + u for u in uids]
        result = run_leader_election(
            StaticDynamicGraph(topo),
            uids=uids,
            payloads=payloads,
            seed=3,
            max_rounds=20_000,
        )
        assert result.terminated
        # Winner is uid 1 at vertex 0 -> payload 101 everywhere.
        for node in result.nodes.values():
            assert node.candidate_payload == 101

    def test_agreement_permanent_after_convergence(self):
        """Once all candidates hit the minimum, they never change again."""
        topo = cycle(8)
        uids = list(range(1, 9))
        result = run_leader_election(
            StaticDynamicGraph(topo), uids=uids, seed=7, max_rounds=20_000
        )
        assert result.terminated
        # Run 200 more rounds by hand: candidates must stay at 1.
        from repro.sim.engine import Simulation

        sim = Simulation(
            StaticDynamicGraph(topo),
            result.nodes,
            b=1,
            seed=99,
            channel_policy=ChannelPolicy.for_upper_n(8),
        )
        sim.run(max_rounds=200)
        assert {n.candidate_leader for n in result.nodes.values()} == {1}
