"""Tests for proposal resolution — the model's connection rules."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolViolationError
from repro.sim.matching import resolve_proposals


class TestBasicRules:
    def test_single_proposal_connects(self):
        matches = resolve_proposals({1: 2}, random.Random(0))
        assert matches == [(1, 2)]

    def test_proposer_cannot_receive(self):
        # 1 -> 2 and 2 -> 3: node 2 proposed, so 1's proposal is lost.
        matches = resolve_proposals({1: 2, 2: 3}, random.Random(0))
        assert matches == [(2, 3)]

    def test_one_acceptance_per_target(self):
        matches = resolve_proposals({1: 9, 2: 9, 3: 9}, random.Random(0))
        assert len(matches) == 1
        initiator, responder = matches[0]
        assert responder == 9
        assert initiator in {1, 2, 3}

    def test_self_proposal_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals({1: 1}, random.Random(0))

    def test_empty_input(self):
        assert resolve_proposals({}, random.Random(0)) == []

    def test_disjoint_pairs_all_connect(self):
        matches = resolve_proposals({1: 2, 3: 4, 5: 6}, random.Random(0))
        assert sorted(matches) == [(1, 2), (3, 4), (5, 6)]

    def test_deterministic_given_seed(self):
        proposals = {i: 99 for i in range(1, 8)}
        a = resolve_proposals(proposals, random.Random(42))
        b = resolve_proposals(proposals, random.Random(42))
        assert a == b


class TestAcceptanceUniformity:
    def test_acceptance_roughly_uniform(self):
        counts = Counter()
        for seed in range(3000):
            matches = resolve_proposals({1: 9, 2: 9, 3: 9}, random.Random(seed))
            counts[matches[0][0]] += 1
        assert set(counts) == {1, 2, 3}
        assert min(counts.values()) > 800  # each ~1000 of 3000


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=30),
        values=st.integers(min_value=0, max_value=30),
        min_size=0,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_matching_invariants(proposals, seed):
    proposals = {p: t for p, t in proposals.items() if p != t}
    matches = resolve_proposals(proposals, random.Random(seed))

    participants = [node for pair in matches for node in pair]
    # Invariant: one connection per node.
    assert len(participants) == len(set(participants))
    for initiator, responder in matches:
        # Initiators proposed to exactly that responder.
        assert proposals[initiator] == responder
        # Responders never proposed.
        assert responder not in proposals
    # Every proposal to a non-proposing target with no competition connects.
    incoming = Counter(t for p, t in proposals.items() if t not in proposals)
    for target, count in incoming.items():
        if count >= 1:
            assert any(resp == target for _, resp in matches)
