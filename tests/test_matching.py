"""Tests for proposal resolution — the model's connection rules."""

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.sim.matching import (
    ACCEPTANCE_RULES,
    resolve_proposals,
    resolve_proposals_arrays,
    resolve_proposals_arrays_masked,
    resolve_proposals_masked,
    resolve_proposals_unbounded,
)


class TestBasicRules:
    def test_single_proposal_connects(self):
        matches = resolve_proposals({1: 2}, random.Random(0))
        assert matches == [(1, 2)]

    def test_proposer_cannot_receive(self):
        # 1 -> 2 and 2 -> 3: node 2 proposed, so 1's proposal is lost.
        matches = resolve_proposals({1: 2, 2: 3}, random.Random(0))
        assert matches == [(2, 3)]

    def test_one_acceptance_per_target(self):
        matches = resolve_proposals({1: 9, 2: 9, 3: 9}, random.Random(0))
        assert len(matches) == 1
        initiator, responder = matches[0]
        assert responder == 9
        assert initiator in {1, 2, 3}

    def test_self_proposal_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals({1: 1}, random.Random(0))

    def test_empty_input(self):
        assert resolve_proposals({}, random.Random(0)) == []

    def test_disjoint_pairs_all_connect(self):
        matches = resolve_proposals({1: 2, 3: 4, 5: 6}, random.Random(0))
        assert sorted(matches) == [(1, 2), (3, 4), (5, 6)]

    def test_deterministic_given_seed(self):
        proposals = {i: 99 for i in range(1, 8)}
        a = resolve_proposals(proposals, random.Random(42))
        b = resolve_proposals(proposals, random.Random(42))
        assert a == b


class TestAcceptanceUniformity:
    def test_acceptance_roughly_uniform(self):
        counts = Counter()
        for seed in range(3000):
            matches = resolve_proposals({1: 9, 2: 9, 3: 9}, random.Random(seed))
            counts[matches[0][0]] += 1
        assert set(counts) == {1, 2, 3}
        assert min(counts.values()) > 800  # each ~1000 of 3000


class TestDeterministicRules:
    """Direct coverage for lowest_uid/highest_uid (previously only
    exercised through the engine's acceptance plumbing)."""

    def test_lowest_uid_picks_minimum_sender(self):
        matches = resolve_proposals(
            {8: 1, 3: 1, 5: 1}, random.Random(0), rule="lowest_uid"
        )
        assert matches == [(3, 1)]

    def test_highest_uid_picks_maximum_sender(self):
        matches = resolve_proposals(
            {8: 1, 3: 1, 5: 1}, random.Random(0), rule="highest_uid"
        )
        assert matches == [(8, 1)]

    def test_rules_consume_no_randomness(self):
        # Deterministic rules must leave the rng untouched so runs with
        # different rules stay comparable draw-for-draw downstream.
        for rule in ("lowest_uid", "highest_uid"):
            rng = random.Random(99)
            resolve_proposals({1: 9, 2: 9, 3: 8}, rng, rule=rule)
            assert rng.random() == random.Random(99).random()

    def test_multiple_targets_sorted_output(self):
        matches = resolve_proposals(
            {5: 2, 6: 2, 7: 4, 8: 4}, random.Random(0), rule="lowest_uid"
        )
        assert matches == [(5, 2), (7, 4)]


class TestUnboundedBaseline:
    def test_all_proposals_to_idle_target_connect(self):
        matches = resolve_proposals_unbounded({1: 9, 2: 9, 3: 9})
        assert matches == [(1, 9), (2, 9), (3, 9)]

    def test_output_ordered_by_target_then_sender(self):
        matches = resolve_proposals_unbounded({7: 2, 1: 4, 3: 2, 5: 4})
        assert matches == [(3, 2), (7, 2), (1, 4), (5, 4)]

    def test_proposer_targets_lost(self):
        # 3 proposed, so proposals aimed at 3 die; 3's own survives.
        matches = resolve_proposals_unbounded({1: 3, 2: 3, 3: 9})
        assert matches == [(3, 9)]

    def test_self_proposal_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals_unbounded({4: 4})

    def test_empty(self):
        assert resolve_proposals_unbounded({}) == []


def _as_arrays(proposals: dict):
    proposers = np.array(sorted(proposals), dtype=np.int64)
    targets = np.array([proposals[p] for p in sorted(proposals)],
                       dtype=np.int64)
    return proposers, targets


class TestArrayResolver:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_proposals_arrays([1], [2], random.Random(0), rule="fifo")

    def test_uniform_requires_rng(self):
        with pytest.raises(ConfigurationError):
            resolve_proposals_arrays([1], [2], None, rule="uniform")

    def test_self_proposal_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals_arrays([3], [3], random.Random(0))

    def test_duplicate_proposers_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals_arrays([3, 3], [1, 2], random.Random(0))

    def test_returns_python_ints(self):
        matches = resolve_proposals_arrays([1], [2], random.Random(0))
        assert matches == [(1, 2)]
        assert all(
            type(x) is int for pair in matches for x in pair
        )

    @pytest.mark.parametrize(
        "rule", sorted(ACCEPTANCE_RULES) + ["unbounded"]
    )
    def test_agrees_with_dict_resolver_on_fixed_cases(self, rule):
        cases = [
            {},
            {1: 2},
            {1: 9, 2: 9, 3: 9},
            {1: 2, 2: 3},
            {5: 2, 6: 2, 7: 4, 8: 4, 2: 6},
        ]
        for proposals in cases:
            if rule == "unbounded":
                expected = resolve_proposals_unbounded(proposals)
                got = resolve_proposals_arrays(
                    *_as_arrays(proposals), rule="unbounded"
                )
            else:
                expected = resolve_proposals(
                    proposals, random.Random(17), rule=rule
                )
                got = resolve_proposals_arrays(
                    *_as_arrays(proposals), random.Random(17), rule=rule
                )
            assert got == expected, (rule, proposals)


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=30),
        values=st.integers(min_value=0, max_value=30),
        min_size=0,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(sorted(ACCEPTANCE_RULES) + ["unbounded"]),
)
@settings(max_examples=200, deadline=None)
def test_array_resolver_agrees_with_dict_resolver(proposals, seed, rule):
    """Property: on any proposal map, the array resolver returns the dict
    resolver's matches exactly — pair values, list order — *and* leaves
    the shared random stream in the same state (the byte-identical
    matching guarantee the engine's fast path is built on)."""
    proposals = {p: t for p, t in proposals.items() if p != t}
    proposers, targets = _as_arrays(proposals)
    if rule == "unbounded":
        expected = resolve_proposals_unbounded(proposals)
        got = resolve_proposals_arrays(proposers, targets, rule="unbounded")
    else:
        rng_dict = random.Random(seed)
        rng_array = random.Random(seed)
        expected = resolve_proposals(proposals, rng_dict, rule=rule)
        got = resolve_proposals_arrays(proposers, targets, rng_array,
                                       rule=rule)
        # Same post-resolution stream state: the next draw agrees.
        assert rng_array.random() == rng_dict.random()
    assert got == expected


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=30),
        values=st.integers(min_value=0, max_value=30),
        min_size=0,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_matching_invariants(proposals, seed):
    proposals = {p: t for p, t in proposals.items() if p != t}
    matches = resolve_proposals(proposals, random.Random(seed))

    participants = [node for pair in matches for node in pair]
    # Invariant: one connection per node.
    assert len(participants) == len(set(participants))
    for initiator, responder in matches:
        # Initiators proposed to exactly that responder.
        assert proposals[initiator] == responder
        # Responders never proposed.
        assert responder not in proposals
    # Every proposal to a non-proposing target with no competition connects.
    incoming = Counter(t for p, t in proposals.items() if t not in proposals)
    for target, count in incoming.items():
        if count >= 1:
            assert any(resp == target for _, resp in matches)


class TestMaskedResolvers:
    """The fault layer's masked twins: inactive endpoints disappear,
    everything-active is the unmasked resolver exactly."""

    PROPOSALS = {1: 5, 2: 5, 3: 6, 4: 2, 7: 6}

    def test_all_active_equals_unmasked(self):
        active = frozenset(range(1, 10))
        for rule in sorted(ACCEPTANCE_RULES):
            assert resolve_proposals_masked(
                dict(self.PROPOSALS), active, random.Random(3), rule=rule
            ) == resolve_proposals(
                dict(self.PROPOSALS), random.Random(3), rule=rule
            )

    def test_all_active_consumes_rng_identically(self):
        active = frozenset(range(1, 10))
        rng_a, rng_b = random.Random(9), random.Random(9)
        resolve_proposals_masked(dict(self.PROPOSALS), active, rng_a)
        resolve_proposals(dict(self.PROPOSALS), rng_b)
        assert rng_a.random() == rng_b.random()  # same stream position

    def test_inactive_proposer_and_target_removed(self):
        # 5 asleep: proposals 1->5 and 2->5 vanish; 3 asleep: 3->6 gone.
        active = frozenset({1, 2, 4, 6, 7})
        matches = resolve_proposals_masked(
            dict(self.PROPOSALS), active, random.Random(1)
        )
        assert matches == [(4, 2), (7, 6)]

    def test_arrays_masked_matches_dict_masked(self):
        active = {1, 2, 4, 6, 7}
        for rule in sorted(ACCEPTANCE_RULES) + ["unbounded"]:
            expected = resolve_proposals_masked(
                dict(self.PROPOSALS), frozenset(active),
                random.Random(5), rule=rule,
            )
            got = resolve_proposals_arrays_masked(
                np.array(sorted(self.PROPOSALS)),
                np.array([self.PROPOSALS[p]
                          for p in sorted(self.PROPOSALS)]),
                np.array(sorted(active)),
                random.Random(5), rule=rule,
            )
            assert got == expected

    def test_nobody_active_means_no_matches(self):
        assert resolve_proposals_masked(
            dict(self.PROPOSALS), frozenset(), random.Random(1)
        ) == []
        assert resolve_proposals_arrays_masked(
            np.array([1, 2]), np.array([5, 5]), np.array([], dtype=int),
            random.Random(1),
        ) == []


@given(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=30),
        values=st.integers(min_value=0, max_value=30),
        min_size=0,
        max_size=25,
    ),
    st.sets(st.integers(min_value=0, max_value=30)),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=150, deadline=None)
def test_masked_resolvers_agree(proposals, active, seed):
    proposals = {p: t for p, t in proposals.items() if p != t}
    active = frozenset(active)
    expected = resolve_proposals_masked(
        proposals, active, random.Random(seed)
    )
    got = resolve_proposals_arrays_masked(
        np.array(sorted(proposals), dtype=int),
        np.array([proposals[p] for p in sorted(proposals)], dtype=int),
        np.array(sorted(active), dtype=int),
        random.Random(seed),
    )
    assert got == expected
    # Masked matches only ever involve active nodes.
    flat = {node for pair in expected for node in pair}
    assert flat <= active
