"""Tests for vertex expansion, boundary, and related metrics."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphs.metrics import (
    boundary,
    diameter,
    expansion_of_set,
    max_degree,
    vertex_expansion_estimate,
    vertex_expansion_exact,
)
from repro.graphs.topologies import (
    complete,
    cycle,
    double_star,
    path,
    random_regular,
    star,
)


class TestBoundary:
    def test_path_interior(self):
        g = path(5).graph
        assert boundary(g, {2}) == {1, 3}

    def test_path_prefix(self):
        g = path(5).graph
        assert boundary(g, {0, 1}) == {2}

    def test_star_leaves(self):
        g = star(6).graph
        assert boundary(g, {1, 2}) == {0}

    def test_whole_graph_empty_boundary(self):
        g = cycle(5).graph
        assert boundary(g, set(g.nodes)) == set()

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            boundary(path(3).graph, set())


class TestExpansionOfSet:
    def test_singleton_in_complete(self):
        g = complete(5).graph
        assert expansion_of_set(g, {0}) == 4.0

    def test_half_cycle(self):
        g = cycle(8).graph
        assert expansion_of_set(g, {0, 1, 2, 3}) == pytest.approx(0.5)


class TestExactExpansion:
    def test_matches_closed_form_star(self):
        topo = star(8)
        assert vertex_expansion_exact(topo.graph) == pytest.approx(topo.alpha)

    def test_matches_closed_form_path(self):
        topo = path(9)
        assert vertex_expansion_exact(topo.graph) == pytest.approx(topo.alpha)

    def test_matches_closed_form_cycle(self):
        topo = cycle(10)
        assert vertex_expansion_exact(topo.graph) == pytest.approx(topo.alpha)

    def test_matches_closed_form_complete(self):
        topo = complete(6)
        assert vertex_expansion_exact(topo.graph) == pytest.approx(topo.alpha)

    def test_matches_closed_form_double_star(self):
        topo = double_star(4)
        assert vertex_expansion_exact(topo.graph) == pytest.approx(topo.alpha)

    def test_size_guard(self):
        with pytest.raises(ConfigurationError):
            vertex_expansion_exact(cycle(40).graph)


class TestEstimate:
    @pytest.mark.parametrize(
        "topo",
        [star(10), path(12), cycle(12), double_star(5), complete(8)],
        ids=lambda t: t.name,
    )
    def test_estimate_finds_closed_form_cut(self, topo):
        est = vertex_expansion_estimate(topo.graph, seed=0)
        assert est.alpha == pytest.approx(topo.alpha)

    def test_estimate_is_upper_bound_small_graphs(self):
        for seed in range(3):
            topo = random_regular(12, 3, seed=seed)
            exact = vertex_expansion_exact(topo.graph)
            est = vertex_expansion_estimate(topo.graph, seed=1)
            assert est.alpha >= exact - 1e-12

    def test_witness_achieves_alpha(self):
        topo = double_star(6)
        est = vertex_expansion_estimate(topo.graph)
        assert expansion_of_set(topo.graph, est.witness) == pytest.approx(est.alpha)

    def test_witness_size_legal(self):
        topo = cycle(14)
        est = vertex_expansion_estimate(topo.graph)
        assert 0 < len(est.witness) <= topo.n // 2

    def test_float_conversion(self):
        est = vertex_expansion_estimate(cycle(8).graph)
        assert float(est) == est.alpha


class TestDegreeAndDiameter:
    def test_max_degree(self):
        assert max_degree(star(7).graph) == 6
        assert max_degree(cycle(7).graph) == 2

    def test_diameter(self):
        assert diameter(path(6).graph) == 5
        assert diameter(complete(6).graph) == 1


@given(st.integers(min_value=4, max_value=12), st.integers(min_value=0, max_value=5))
@settings(max_examples=20, deadline=None)
def test_estimate_upper_bounds_exact_on_random_graphs(n, seed):
    g = nx.gnp_random_graph(n, 0.5, seed=seed)
    if not nx.is_connected(g) or g.number_of_nodes() < 2:
        return
    exact = vertex_expansion_exact(g)
    est = vertex_expansion_estimate(g, seed=seed)
    assert est.alpha >= exact - 1e-12
    # The witness is a genuine cut achieving the reported value.
    assert expansion_of_set(g, est.witness) == pytest.approx(est.alpha)
