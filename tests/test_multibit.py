"""Tests for the b ≥ 1 MultiBitSharedBit generalization."""

import random

import pytest

from repro.core.multibit import MultiBitConfig, MultiBitSharedBitNode
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import cycle, expander, star
from repro.rng import SharedRandomness
from repro.sim.context import NeighborView

KEY = b"m" * 32


def make_node(uid=1, tokens=(), bits=2, shared=None, seed=0, upper_n=64):
    return MultiBitSharedBitNode(
        uid=uid,
        upper_n=upper_n,
        initial_tokens=tuple(Token(t) for t in tokens),
        rng=random.Random(seed),
        shared=shared or SharedRandomness(KEY, upper_n),
        config=MultiBitConfig(bits=bits),
    )


class TestTagHash:
    def test_empty_set_tag_zero(self):
        node = make_node(bits=3)
        assert node.advertise(1, ()) == 0

    def test_tag_within_b_bits(self):
        node = make_node(tokens=(5, 9), bits=3)
        for r in range(1, 100):
            assert 0 <= node.advertisement_tag(r) < 8

    def test_equal_sets_equal_tags(self):
        shared = SharedRandomness(KEY, 64)
        a = make_node(uid=1, tokens=(3, 7), bits=4, shared=shared)
        b = make_node(uid=2, tokens=(3, 7), bits=4, shared=shared)
        for r in range(1, 50):
            assert a.advertisement_tag(r) == b.advertisement_tag(r)

    def test_collision_rate_drops_with_b(self):
        """Different sets collide with probability ~2^-b."""
        shared = SharedRandomness(KEY, 64)
        rounds = 3000

        def collision_rate(bits):
            a = make_node(uid=1, tokens=(3, 7), bits=bits, shared=shared)
            b = make_node(uid=2, tokens=(3, 9), bits=bits, shared=shared)
            collisions = sum(
                1 for r in range(1, rounds + 1)
                if a.advertisement_tag(r) == b.advertisement_tag(r)
            )
            return collisions / rounds

        rate1 = collision_rate(1)
        rate3 = collision_rate(3)
        assert 0.43 < rate1 < 0.57          # ~1/2
        assert 0.07 < rate3 < 0.19          # ~1/8

    def test_b1_matches_sharedbit_hash(self):
        """With b = 1 the hash family is SharedBit's (same string usage
        modulo which PRF lane supplies the bit)."""
        node = make_node(tokens=(5,), bits=1)
        for r in range(1, 30):
            assert node.advertisement_tag(r) in (0, 1)


class TestProposals:
    def test_targets_only_strictly_smaller_tags(self):
        node = make_node(tokens=(5,), bits=2)
        r = next(
            r for r in range(1, 200) if node.advertisement_tag(r) == 3
        )
        node.advertise(r, (2, 3, 4))
        views = (
            NeighborView(uid=2, tag=3),
            NeighborView(uid=3, tag=1),
            NeighborView(uid=4, tag=0),
        )
        target = node.propose(r, views)
        assert target in (3, 4)

    def test_smallest_tag_never_proposes(self):
        node = make_node(bits=2)  # empty set -> tag 0, nothing smaller
        node.advertise(1, (2,))
        assert node.propose(1, (NeighborView(uid=2, tag=3),)) is None


class TestConfig:
    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            MultiBitConfig(bits=0)

    def test_epsilon(self):
        cfg = MultiBitConfig(bits=2, transfer_error_exponent=1.0)
        assert cfg.transfer_epsilon(10) == pytest.approx(0.1)


class TestEndToEnd:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_solves_on_dynamic_star(self, bits):
        inst = uniform_instance(n=12, k=2, seed=5)
        result = run_gossip(
            "multibit",
            RelabelingAdversary(star(12), tau=1, seed=3),
            inst,
            seed=5,
            max_rounds=100_000,
            config=MultiBitConfig(bits=bits),
        )
        assert result.solved

    def test_solves_on_static_cycle(self):
        inst = uniform_instance(n=10, k=3, seed=2)
        result = run_gossip(
            "multibit",
            StaticDynamicGraph(cycle(10)),
            inst,
            seed=2,
            max_rounds=100_000,
        )
        assert result.solved
        assert result.residual_potential == 0

    def test_more_bits_never_catastrophically_slower(self):
        """b=4 should be in the same ballpark as b=1 (the paper: beyond
        b=1 the gains are marginal — but they must not be losses)."""
        import statistics

        def median_rounds(bits):
            values = []
            for seed in (3, 5, 7, 11, 13):
                inst = uniform_instance(n=16, k=4, seed=seed)
                result = run_gossip(
                    "multibit",
                    RelabelingAdversary(star(16), tau=1, seed=seed),
                    inst,
                    seed=seed,
                    max_rounds=200_000,
                    config=MultiBitConfig(bits=bits),
                )
                assert result.solved
                values.append(result.rounds)
            return statistics.median(values)

        assert median_rounds(4) < 2.0 * median_rounds(1)
