"""Tests for repro.net: framing, peer tables, loopback clusters, replay.

The socket-free pieces (framing round trips, :class:`PeerTable`
liveness under an explicit virtual clock) run unconditionally.  Tests
that bind real loopback sockets carry the ``net`` marker so CI's tier-1
job can stay hermetic (``-m "not net"``) while the net-smoke job runs
them; locally they run by default and need no network beyond 127.0.0.1.

Liveness tests drive the clock explicitly (``now=``) — no sleeps as
synchronization anywhere in this file.
"""

import socket
import time

import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander
from repro.net import (
    Coordinator,
    PeerEntry,
    PeerServer,
    PeerTable,
    TransportError,
    record_run,
    recv_msg,
    replay,
    request,
    send_msg,
)
from repro.net.framing import HEADER, MAX_FRAME
from repro.registry import TRANSPORT_REGISTRY


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "ping", "values": [1, 2, 3], "nested": {"x": None}}
            send_msg(a, payload)
            assert recv_msg(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # Announce 100 bytes, deliver 3, then hang up mid-frame.
            a.sendall(HEADER.pack(100) + b"abc")
            a.close()
            with pytest.raises(TransportError):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(HEADER.pack(MAX_FRAME + 1))
            with pytest.raises(TransportError):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestPeerTable:
    def test_upsert_get_contains(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=7, host="127.0.0.1", port=9000,
                               vertex=0, last_seen=1.0))
        assert 7 in table
        assert table.get(7).port == 9000
        assert table.uids() == (7,)
        assert len(table) == 1

    def test_heartbeat_advances_virtual_clock(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=10.0))
        assert table.heartbeat(1, now=25.0)
        assert table.get(1).last_seen == 25.0
        assert not table.heartbeat(99, now=25.0)  # unknown uid

    def test_prune_is_age_based_and_explicit(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=100.0))
        table.upsert(PeerEntry(uid=2, host="h", port=2, last_seen=100.0))
        table.heartbeat(1, now=130.0)
        # At t=140 with max_age=20: uid 1 is 10s old (kept), uid 2 is
        # 40s old (pruned).
        assert table.prune(max_age=20.0, now=140.0) == (2,)
        assert table.uids() == (1,)
        # Idempotent: nothing else crosses the threshold.
        assert table.prune(max_age=20.0, now=140.0) == ()

    def test_replace_all_swaps_membership(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=0.0))
        table.replace_all([
            PeerEntry(uid=2, host="h", port=2, last_seen=5.0),
            PeerEntry(uid=3, host="h", port=3, last_seen=5.0),
        ])
        assert table.uids() == (2, 3)
        assert 1 not in table

    def test_heartbeat_racing_prune_refresh_wins_when_first(self):
        """A refresh that lands before the prune saves the entry."""
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=10.0))
        assert table.heartbeat(1, now=100.0)
        assert table.prune(max_age=20.0, now=105.0) == ()
        assert 1 in table

    def test_heartbeat_racing_prune_prune_wins_when_first(self):
        """A refresh that lands after the prune finds the entry gone —
        and must report that honestly (False), not resurrect it."""
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=10.0))
        assert table.prune(max_age=20.0, now=100.0) == (1,)
        assert not table.heartbeat(1, now=100.0)
        assert 1 not in table

    def test_concurrent_heartbeats_and_prunes_keep_invariants(self):
        """Hammer refresh/prune from threads: no exceptions, and every
        surviving entry's stamp is one some heartbeat actually wrote.

        The virtual clock still drives liveness — threads only contend
        for the lock, they never sleep.
        """
        import threading as _threading

        table = PeerTable()
        for uid in range(8):
            table.upsert(PeerEntry(uid=uid, host="h", port=uid,
                                   last_seen=0.0))
        stamps = [float(s) for s in range(1, 33)]
        errors = []

        def beat():
            try:
                for stamp in stamps:
                    for uid in range(8):
                        table.heartbeat(uid, now=stamp)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def prune():
            try:
                for stamp in stamps:
                    table.prune(max_age=5.0, now=stamp)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [_threading.Thread(target=beat) for _ in range(3)]
        threads += [_threading.Thread(target=prune) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for entry in table.entries():
            assert entry.last_seen in stamps

    def test_pruned_peer_can_be_readded(self):
        """Re-adding after prune is a fresh entry, not a resurrection:
        the new stamp governs the next prune decision."""
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=10.0))
        assert table.prune(max_age=5.0, now=100.0) == (1,)
        table.upsert(PeerEntry(uid=1, host="h2", port=2, last_seen=100.0))
        assert 1 in table
        assert table.get(1).host == "h2"
        assert table.prune(max_age=5.0, now=104.0) == ()
        assert table.prune(max_age=5.0, now=106.0) == (1,)

    def test_prune_max_age_zero_is_strictly_older(self):
        """``max_age=0`` evicts entries strictly older than *now* and
        keeps ones stamped exactly now — the boundary the live
        kill-and-prune path relies on."""
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=50.0))
        table.upsert(PeerEntry(uid=2, host="h", port=2, last_seen=49.9))
        assert table.prune(max_age=0.0, now=50.0) == (2,)
        assert 1 in table

    def test_touch_all_refreshes_every_stamp(self):
        """The rejoin path: a revived node trusts its stored table."""
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=1.0))
        table.upsert(PeerEntry(uid=2, host="h", port=2, last_seen=2.0))
        table.touch_all(now=500.0)
        assert [e.last_seen for e in table.entries()] == [500.0, 500.0]
        assert table.prune(max_age=10.0, now=505.0) == ()


def _single_server(n=4, seed=3, vertex=0):
    instance = uniform_instance(n=n, k=2, seed=seed)
    nodes = build_nodes("sharedbit", instance, seed=seed)
    return PeerServer(
        nodes[vertex],
        uid=instance.uid_of(vertex),
        vertex=vertex,
        seed=seed,
        b=1,
    )


@pytest.mark.net
class TestPeerServer:
    def test_ping_and_snapshot(self):
        with _single_server() as server:
            host, port = server.address
            assert request(host, port, {"op": "ping"})["ok"] is True
            snap = request(host, port, {"op": "snapshot"})
            assert snap["uid"] == server.uid
            assert snap["vertex"] == 0
            assert isinstance(snap["tokens"], list)

    def test_unknown_op_reports_error(self):
        with _single_server() as server:
            host, port = server.address
            reply = request(host, port, {"op": "no-such-op"})
            assert "error" in reply

    def test_rejects_unbounded_acceptance(self):
        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("sharedbit", instance, seed=3)
        with pytest.raises(ConfigurationError):
            PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                       seed=3, b=1, acceptance="unbounded")

    def test_stop_reports_leaked_handler_threads(self):
        """A handler pinned by a half-sent frame is counted, not lost.

        The client announces a 100-byte frame, sends 3 bytes, and goes
        silent; the handler blocks in ``recv``.  ``stop`` with a tiny
        timeout must return the leak count instead of pretending the
        shutdown was clean.
        """
        server = _single_server().start()
        host, port = server.address
        client = socket.create_connection((host, port))
        try:
            client.sendall(HEADER.pack(100) + b"abc")
            # Wait (bounded) for the handler thread to pick the
            # connection up — the accept loop is asynchronous.
            deadline = time.monotonic() + 5.0
            while (not server._handler_threads
                   and time.monotonic() < deadline):
                time.sleep(0.005)
            leaked = server.stop(timeout=0.05)
            assert leaked >= 1
            assert server.stats["leaked_threads"] == leaked
        finally:
            client.close()

    def test_clean_stop_reports_zero_leaks(self):
        server = _single_server().start()
        host, port = server.address
        assert request(host, port, {"op": "ping"})["ok"] is True
        assert server.stop() == 0
        assert server.stats["leaked_threads"] == 0


@pytest.mark.net
class TestTransportErrorContext:
    def test_refused_connection_names_the_peer(self):
        """Satellite: a refused connect carries host:port, not a bare
        errno."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # nothing listens here now
        with pytest.raises(TransportError) as info:
            request(host, port, {"op": "ping"}, timeout=2.0, uid=42)
        err = info.value
        assert err.kind == "refused"
        assert err.retryable
        assert err.peer == f"{host}:{port}"
        assert err.uid == 42
        assert err.op == "ping"
        assert f"{host}:{port}" in str(err)

    def test_timeout_is_classified_with_context(self):
        """A listening socket that never accepts/replies times the
        request out; the error names the peer and the timeout."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        host, port = silent.getsockname()
        try:
            with pytest.raises(TransportError) as info:
                request(host, port, {"op": "ping"}, timeout=0.05)
            err = info.value
            assert err.kind == "timeout"
            assert err.retryable
            assert err.peer == f"{host}:{port}"
        finally:
            silent.close()

    def test_default_timeouts_are_unified(self):
        """Satellite: server and coordinator share one named constant."""
        from repro.net import DEFAULT_REQUEST_TIMEOUT
        import inspect

        server_default = inspect.signature(
            PeerServer.__init__
        ).parameters["request_timeout"].default
        coord_default = inspect.signature(
            Coordinator.__init__
        ).parameters["request_timeout"].default
        assert server_default == DEFAULT_REQUEST_TIMEOUT
        assert coord_default == DEFAULT_REQUEST_TIMEOUT


@pytest.mark.net
class TestLoopbackCluster:
    def test_three_node_convergence(self):
        """3-node cycle, live sharedbit: everyone learns every token."""
        n = 3
        instance = uniform_instance(n=n, k=2, seed=7)
        coord = Coordinator(
            "sharedbit",
            StaticDynamicGraph(cycle(n)),
            instance,
            seed=7,
        )
        with coord:
            report = coord.run(max_rounds=64)
        assert report.solved, f"did not converge in {report.rounds} rounds"
        wanted = tuple(sorted(instance.token_ids))
        assert all(tokens == wanted
                   for tokens in report.final_tokens.values())
        assert report.trace.total_connections >= 1

    def test_heartbeat_prunes_killed_peer(self):
        """A stopped peer misses heartbeats and is pruned from tables.

        No sleeps: the surviving server's ``beat`` op fails to reach the
        dead peer (so its ``last_seen`` never advances past the install
        stamp), and a ``prune`` with ``max_age=0.0`` evicts any entry
        strictly older than *now* — which the dead peer necessarily is
        after the failed beat's own round trips.
        """
        instance = uniform_instance(n=4, k=2, seed=5)
        nodes = build_nodes("sharedbit", instance, seed=5)
        alive = PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                           seed=5, b=1)
        doomed = PeerServer(nodes[1], uid=instance.uid_of(1), vertex=1,
                            seed=5, b=1)
        alive.start()
        doomed.start()
        try:
            host, port = alive.address
            d_host, d_port = doomed.address
            reply = request(host, port, {
                "op": "set_neighbors",
                "entries": [[doomed.uid, d_host, d_port, 1]],
            })
            assert reply == {"ok": True, "peers": 1}
            assert doomed.uid in alive.table

            doomed.stop()
            beat = request(host, port, {"op": "beat"})
            assert beat["failed"] == [doomed.uid]
            assert beat["delivered"] == []

            pruned = request(host, port,
                             {"op": "prune", "max_age": 0.0})
            assert pruned["removed"] == [doomed.uid]
            assert doomed.uid not in alive.table
        finally:
            alive.stop()
            doomed.stop()


@pytest.mark.net
class TestLiveIntrospection:
    """The observability surface of the live layer (DESIGN.md §11):
    every server answers a ``metrics`` op for itself, relays the
    coordinator's pushed cluster view, and ``repro-gossip top`` renders
    either from one endpoint."""

    def test_metrics_op_reports_server_state(self):
        with _single_server() as server:
            host, port = server.address
            snap = request(host, port, {"op": "metrics"})
            assert snap["uid"] == server.uid
            assert snap["vertex"] == 0
            assert snap["round"] == 0
            assert snap["peers"] == 0
            assert snap["asleep"] is False
            assert snap["latency"]["count"] == 0
            assert snap["cluster"] == {}

    def test_status_push_is_relayed_through_metrics(self):
        with _single_server() as server:
            host, port = server.address
            pushed = request(host, port, {
                "op": "status", "round": 7, "suspects": 2,
                "active": 5, "n": 8,
            })
            assert pushed == {"ok": True}
            cluster = request(host, port, {"op": "metrics"})["cluster"]
            assert cluster == {"round": 7, "suspects": 2,
                               "active": 5, "n": 8}

    def test_coordinator_pushes_status_and_scrapes_metrics(self):
        n = 3
        instance = uniform_instance(n=n, k=2, seed=7)
        coord = Coordinator(
            "sharedbit", StaticDynamicGraph(cycle(n)), instance, seed=7,
        )
        with coord:
            report = coord.run(max_rounds=16)
        assert set(report.server_metrics) == {
            coord.servers[v].uid for v in range(n)
        }
        for snap in report.server_metrics.values():
            assert snap["round"] == report.rounds
            cluster = snap["cluster"]
            assert cluster["round"] == report.rounds
            assert cluster["n"] == n
            assert cluster["suspects"] == 0
        # Someone initiated a connection, so someone timed one.
        assert any(snap["latency"]["count"] > 0
                   for snap in report.server_metrics.values())

    def test_top_renders_a_live_endpoint(self, capsys):
        from repro.cli import main

        n = 3
        instance = uniform_instance(n=n, k=2, seed=7)
        coord = Coordinator(
            "sharedbit", StaticDynamicGraph(cycle(n)), instance, seed=7,
        )
        with coord:
            coord.run(max_rounds=8)
            host, port = coord.servers[0].address
            rc = main(["top", f"{host}:{port}", "--iterations", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cluster round" in out
        assert "cluster active" in out and f"{n}/{n}" in out
        assert "peer uid" in out
        assert "connect p50" in out

    def test_top_rejects_malformed_address(self):
        from repro.cli import main

        with pytest.raises(ConfigurationError):
            main(["top", "no-port-here"])

    def test_top_unreachable_endpoint_exits_nonzero(self, capsys):
        from repro.cli import main

        # Grab a port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        rc = main(["top", f"{host}:{port}",
                   "--iterations", "1", "--timeout", "0.2"])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().out


@pytest.mark.net
class TestReplayBridge:
    def test_sharedbit_replay_is_equivalent(self):
        """Keystone: a recorded sim run replays live, match for match."""
        record = record_run(
            "sharedbit",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=2)),
            uniform_instance(n=8, k=3, seed=11),
            seed=42,
        )
        assert record.solved
        report = replay(record)
        assert report.equivalent, "\n".join(report.divergences)
        assert report.live.rounds == record.rounds
        assert report.live.final_tokens == record.final_tokens

    def test_ppush_replay_is_equivalent(self):
        record = record_run(
            "ppush",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=4)),
            uniform_instance(n=8, k=1, seed=9),
            seed=17,
        )
        report = replay(record)
        assert report.equivalent, "\n".join(report.divergences)

    def test_divergence_detected_when_seed_differs(self):
        """The bridge is not vacuous: a perturbed replay is flagged."""
        record = record_run(
            "sharedbit",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=2)),
            uniform_instance(n=8, k=3, seed=11),
            seed=42,
        )
        tampered = record.__class__(**{
            **{f: getattr(record, f)
               for f in record.__dataclass_fields__},
            "seed": record.seed + 1,
        })
        report = replay(tampered)
        assert not report.equivalent


@pytest.mark.net
class TestTransportRegistry:
    def test_tcp_transport_registered(self):
        defn = TRANSPORT_REGISTRY.get("tcp")
        assert defn.name == "tcp"
        assert callable(defn.deploy)

    def test_deploy_run_solves_scenario(self):
        report = TRANSPORT_REGISTRY.get("tcp").deploy(
            scenario="live_smoke", seed=3, max_rounds=64,
        )
        assert report.solved
        assert report.algorithm == "sharedbit"
        assert report.n == 8
