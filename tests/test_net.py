"""Tests for repro.net: framing, peer tables, loopback clusters, replay.

The socket-free pieces (framing round trips, :class:`PeerTable`
liveness under an explicit virtual clock) run unconditionally.  Tests
that bind real loopback sockets carry the ``net`` marker so CI's tier-1
job can stay hermetic (``-m "not net"``) while the net-smoke job runs
them; locally they run by default and need no network beyond 127.0.0.1.

Liveness tests drive the clock explicitly (``now=``) — no sleeps as
synchronization anywhere in this file.
"""

import socket

import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander
from repro.net import (
    Coordinator,
    PeerEntry,
    PeerServer,
    PeerTable,
    TransportError,
    record_run,
    recv_msg,
    replay,
    request,
    send_msg,
)
from repro.net.framing import HEADER, MAX_FRAME
from repro.registry import TRANSPORT_REGISTRY


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "ping", "values": [1, 2, 3], "nested": {"x": None}}
            send_msg(a, payload)
            assert recv_msg(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # Announce 100 bytes, deliver 3, then hang up mid-frame.
            a.sendall(HEADER.pack(100) + b"abc")
            a.close()
            with pytest.raises(TransportError):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(HEADER.pack(MAX_FRAME + 1))
            with pytest.raises(TransportError):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestPeerTable:
    def test_upsert_get_contains(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=7, host="127.0.0.1", port=9000,
                               vertex=0, last_seen=1.0))
        assert 7 in table
        assert table.get(7).port == 9000
        assert table.uids() == (7,)
        assert len(table) == 1

    def test_heartbeat_advances_virtual_clock(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=10.0))
        assert table.heartbeat(1, now=25.0)
        assert table.get(1).last_seen == 25.0
        assert not table.heartbeat(99, now=25.0)  # unknown uid

    def test_prune_is_age_based_and_explicit(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=100.0))
        table.upsert(PeerEntry(uid=2, host="h", port=2, last_seen=100.0))
        table.heartbeat(1, now=130.0)
        # At t=140 with max_age=20: uid 1 is 10s old (kept), uid 2 is
        # 40s old (pruned).
        assert table.prune(max_age=20.0, now=140.0) == (2,)
        assert table.uids() == (1,)
        # Idempotent: nothing else crosses the threshold.
        assert table.prune(max_age=20.0, now=140.0) == ()

    def test_replace_all_swaps_membership(self):
        table = PeerTable()
        table.upsert(PeerEntry(uid=1, host="h", port=1, last_seen=0.0))
        table.replace_all([
            PeerEntry(uid=2, host="h", port=2, last_seen=5.0),
            PeerEntry(uid=3, host="h", port=3, last_seen=5.0),
        ])
        assert table.uids() == (2, 3)
        assert 1 not in table


def _single_server(n=4, seed=3, vertex=0):
    instance = uniform_instance(n=n, k=2, seed=seed)
    nodes = build_nodes("sharedbit", instance, seed=seed)
    return PeerServer(
        nodes[vertex],
        uid=instance.uid_of(vertex),
        vertex=vertex,
        seed=seed,
        b=1,
    )


@pytest.mark.net
class TestPeerServer:
    def test_ping_and_snapshot(self):
        with _single_server() as server:
            host, port = server.address
            assert request(host, port, {"op": "ping"})["ok"] is True
            snap = request(host, port, {"op": "snapshot"})
            assert snap["uid"] == server.uid
            assert snap["vertex"] == 0
            assert isinstance(snap["tokens"], list)

    def test_unknown_op_reports_error(self):
        with _single_server() as server:
            host, port = server.address
            reply = request(host, port, {"op": "no-such-op"})
            assert "error" in reply

    def test_rejects_unbounded_acceptance(self):
        instance = uniform_instance(n=4, k=2, seed=3)
        nodes = build_nodes("sharedbit", instance, seed=3)
        with pytest.raises(ConfigurationError):
            PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                       seed=3, b=1, acceptance="unbounded")


@pytest.mark.net
class TestLoopbackCluster:
    def test_three_node_convergence(self):
        """3-node cycle, live sharedbit: everyone learns every token."""
        n = 3
        instance = uniform_instance(n=n, k=2, seed=7)
        coord = Coordinator(
            "sharedbit",
            StaticDynamicGraph(cycle(n)),
            instance,
            seed=7,
        )
        with coord:
            report = coord.run(max_rounds=64)
        assert report.solved, f"did not converge in {report.rounds} rounds"
        wanted = tuple(sorted(instance.token_ids))
        assert all(tokens == wanted
                   for tokens in report.final_tokens.values())
        assert report.trace.total_connections >= 1

    def test_heartbeat_prunes_killed_peer(self):
        """A stopped peer misses heartbeats and is pruned from tables.

        No sleeps: the surviving server's ``beat`` op fails to reach the
        dead peer (so its ``last_seen`` never advances past the install
        stamp), and a ``prune`` with ``max_age=0.0`` evicts any entry
        strictly older than *now* — which the dead peer necessarily is
        after the failed beat's own round trips.
        """
        instance = uniform_instance(n=4, k=2, seed=5)
        nodes = build_nodes("sharedbit", instance, seed=5)
        alive = PeerServer(nodes[0], uid=instance.uid_of(0), vertex=0,
                           seed=5, b=1)
        doomed = PeerServer(nodes[1], uid=instance.uid_of(1), vertex=1,
                            seed=5, b=1)
        alive.start()
        doomed.start()
        try:
            host, port = alive.address
            d_host, d_port = doomed.address
            reply = request(host, port, {
                "op": "set_neighbors",
                "entries": [[doomed.uid, d_host, d_port, 1]],
            })
            assert reply == {"ok": True, "peers": 1}
            assert doomed.uid in alive.table

            doomed.stop()
            beat = request(host, port, {"op": "beat"})
            assert beat["failed"] == [doomed.uid]
            assert beat["delivered"] == []

            pruned = request(host, port,
                             {"op": "prune", "max_age": 0.0})
            assert pruned["removed"] == [doomed.uid]
            assert doomed.uid not in alive.table
        finally:
            alive.stop()
            doomed.stop()


@pytest.mark.net
class TestReplayBridge:
    def test_sharedbit_replay_is_equivalent(self):
        """Keystone: a recorded sim run replays live, match for match."""
        record = record_run(
            "sharedbit",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=2)),
            uniform_instance(n=8, k=3, seed=11),
            seed=42,
        )
        assert record.solved
        report = replay(record)
        assert report.equivalent, "\n".join(report.divergences)
        assert report.live.rounds == record.rounds
        assert report.live.final_tokens == record.final_tokens

    def test_ppush_replay_is_equivalent(self):
        record = record_run(
            "ppush",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=4)),
            uniform_instance(n=8, k=1, seed=9),
            seed=17,
        )
        report = replay(record)
        assert report.equivalent, "\n".join(report.divergences)

    def test_divergence_detected_when_seed_differs(self):
        """The bridge is not vacuous: a perturbed replay is flagged."""
        record = record_run(
            "sharedbit",
            lambda: StaticDynamicGraph(expander(n=8, degree=4, seed=2)),
            uniform_instance(n=8, k=3, seed=11),
            seed=42,
        )
        tampered = record.__class__(**{
            **{f: getattr(record, f)
               for f in record.__dataclass_fields__},
            "seed": record.seed + 1,
        })
        report = replay(tampered)
        assert not report.equivalent


@pytest.mark.net
class TestTransportRegistry:
    def test_tcp_transport_registered(self):
        defn = TRANSPORT_REGISTRY.get("tcp")
        assert defn.name == "tcp"
        assert callable(defn.deploy)

    def test_deploy_run_solves_scenario(self):
        report = TRANSPORT_REGISTRY.get("tcp").deploy(
            scenario="live_smoke", seed=3, max_rounds=64,
        )
        assert report.solved
        assert report.algorithm == "sharedbit"
        assert report.n == 8
