"""Tests for the shared-string family (Newman machinery)."""

import random

import pytest

from repro.commcplx.newman import SharedStringFamily
from repro.errors import ConfigurationError


class TestFamilyShape:
    def test_default_size_poly_n(self):
        family = SharedStringFamily(master_seed=1, capacity_n=16)
        assert family.family_size == 16**3

    def test_seed_bits_polylog(self):
        family = SharedStringFamily(master_seed=1, capacity_n=64)
        # N^3 strings -> 3 log N = 18 bits.
        assert family.seed_bits == 18

    def test_custom_size(self):
        family = SharedStringFamily(master_seed=1, capacity_n=16, family_size=10)
        assert family.family_size == 10
        assert family.seed_bits >= 1


class TestStrings:
    def test_same_seed_same_string(self):
        family = SharedStringFamily(master_seed=5, capacity_n=32)
        a = family.string_for_seed(7)
        b = family.string_for_seed(7)
        assert a == b
        assert a.token_bit(3, 9) == b.token_bit(3, 9)

    def test_different_seeds_differ(self):
        family = SharedStringFamily(master_seed=5, capacity_n=32)
        a = family.string_for_seed(7)
        b = family.string_for_seed(8)
        bits_a = [a.token_bit(1, i) for i in range(32)]
        bits_b = [b.token_bit(1, i) for i in range(32)]
        assert bits_a != bits_b

    def test_family_identity_from_master_seed(self):
        # Two nodes constructing the family independently agree bit-for-bit:
        # the family is common knowledge, like R' in the paper.
        f1 = SharedStringFamily(master_seed=5, capacity_n=32)
        f2 = SharedStringFamily(master_seed=5, capacity_n=32)
        assert f1.string_for_seed(3) == f2.string_for_seed(3)

    def test_different_master_seeds_give_different_families(self):
        f1 = SharedStringFamily(master_seed=5, capacity_n=32)
        f2 = SharedStringFamily(master_seed=6, capacity_n=32)
        a, b = f1.string_for_seed(0), f2.string_for_seed(0)
        assert [a.token_bit(1, i) for i in range(32)] != [
            b.token_bit(1, i) for i in range(32)
        ]

    def test_seed_range_validated(self):
        family = SharedStringFamily(master_seed=1, capacity_n=8, family_size=4)
        with pytest.raises(ConfigurationError):
            family.string_for_seed(4)
        with pytest.raises(ConfigurationError):
            family.string_for_seed(-1)


class TestSampling:
    def test_sample_in_range(self):
        family = SharedStringFamily(master_seed=1, capacity_n=8, family_size=10)
        rng = random.Random(0)
        for _ in range(50):
            assert 0 <= family.sample_seed(rng) < 10

    def test_sampling_covers_family(self):
        family = SharedStringFamily(master_seed=1, capacity_n=8, family_size=4)
        rng = random.Random(0)
        seen = {family.sample_seed(rng) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestValidation:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ConfigurationError):
            SharedStringFamily(master_seed=1, capacity_n=1)

    def test_rejects_empty_family(self):
        with pytest.raises(ConfigurationError):
            SharedStringFamily(master_seed=1, capacity_n=8, family_size=0)
