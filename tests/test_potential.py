"""Tests for the analysis diagnostics: φ, census, coalitions, ε checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.potential import (
    epsilon_gossip_solved,
    find_coalition,
    mutual_knowledge_core,
    potential,
    token_set_census,
)
from repro.errors import ConfigurationError


class Holder:
    """Stand-in node exposing known_tokens (and optionally its own token)."""

    def __init__(self, tokens, own=None):
        self.known_tokens = frozenset(tokens)
        if own is not None:
            self.own_token_id = own


class TestPotential:
    def test_all_ignorant(self):
        nodes = [Holder(set()) for _ in range(4)]
        assert potential(nodes, {1, 2}) == 8

    def test_all_informed_is_zero(self):
        nodes = [Holder({1, 2}) for _ in range(4)]
        assert potential(nodes, {1, 2}) == 0

    def test_partial(self):
        nodes = [Holder({1}), Holder({1, 2}), Holder(set())]
        assert potential(nodes, {1, 2}) == 1 + 0 + 2

    def test_extraneous_tokens_ignored(self):
        nodes = [Holder({1, 99})]
        assert potential(nodes, {1, 2}) == 1

    def test_mapping_input(self):
        nodes = {0: Holder({1}), 1: Holder(set())}
        assert potential(nodes, {1}) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            potential([], {1})


class TestCensus:
    def test_groups_identical_sets(self):
        nodes = [Holder({1}), Holder({1}), Holder({1, 2})]
        census = token_set_census(nodes)
        assert census[frozenset({1})] == 2
        assert census[frozenset({1, 2})] == 1

    def test_empty_sets_counted(self):
        census = token_set_census([Holder(set()), Holder(set())])
        assert census[frozenset()] == 2


class TestFindCoalition:
    def test_solved_when_huge_class_exists(self):
        # 9 of 10 nodes share one token set: solved for eps=0.8.
        nodes = [Holder({1, 2}) for _ in range(9)] + [Holder({1})]
        result = find_coalition(nodes, epsilon=0.8)
        assert result.solved

    def test_midsize_class_is_its_own_coalition(self):
        # Largest class has 5 of 10 nodes; eps=0.8 window is [4, 8].
        nodes = [Holder({1, 2}) for _ in range(5)] + [
            Holder({i + 10}) for i in range(5)
        ]
        result = find_coalition(nodes, epsilon=0.8)
        assert not result.solved
        assert 4 <= result.size <= 8

    def test_greedy_packs_small_classes(self):
        # All classes singletons; eps=0.5 window is [2.5, 5] of n=10.
        nodes = [Holder({i + 1}) for i in range(10)]
        result = find_coalition(nodes, epsilon=0.5)
        assert not result.solved
        assert 2.5 <= result.size <= 5

    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            find_coalition([Holder({1})], epsilon=0.0)


class TestMutualKnowledgeCore:
    def test_full_knowledge_full_core(self):
        nodes = [Holder({1, 2, 3}, own=i + 1) for i in range(3)]
        assert len(mutual_knowledge_core(nodes)) == 3

    def test_isolated_node_pruned(self):
        # Nodes 1,2 know each other; node 3 knows nobody and is unknown.
        nodes = [
            Holder({1, 2}, own=1),
            Holder({1, 2}, own=2),
            Holder({3}, own=3),
        ]
        core = mutual_knowledge_core(nodes)
        assert {h.own_token_id for h in core} == {1, 2}

    def test_cascading_prune(self):
        # 3 knows 1,2,3 but nobody knows 3; dropping 3 leaves {1,2} stable.
        nodes = [
            Holder({1, 2}, own=1),
            Holder({1, 2}, own=2),
            Holder({1, 2, 3}, own=3),
        ]
        core = mutual_knowledge_core(nodes)
        assert {h.own_token_id for h in core} == {1, 2}

    def test_disconnected_knowledge_shrinks_to_singleton(self):
        nodes = [Holder({i + 1}, own=i + 1) for i in range(3)]
        # Each knows only itself; the only stable sets are singletons,
        # which trivially satisfy mutual knowledge.
        assert len(mutual_knowledge_core(nodes)) == 1

    def test_requires_own_token_id(self):
        with pytest.raises(ConfigurationError):
            mutual_knowledge_core([Holder({1})])


class TestEpsilonSolved:
    def test_census_route(self):
        nodes = [Holder({1, 2}, own=1), Holder({1, 2}, own=2)]
        assert epsilon_gossip_solved(nodes, epsilon=0.9)

    def test_core_route(self):
        # Census classes all distinct, but a mutual core of 2/3 exists.
        nodes = [
            Holder({1, 2, 9}, own=1),
            Holder({1, 2}, own=2),
            Holder({3}, own=3),
        ]
        assert epsilon_gossip_solved(nodes, epsilon=0.6)

    def test_unsolved(self):
        nodes = [Holder({1}, own=1), Holder({2}, own=2), Holder({3}, own=3)]
        assert not epsilon_gossip_solved(nodes, epsilon=0.6)


class TestPotentialMonotonicity:
    @given(
        st.lists(
            st.sets(st.integers(min_value=1, max_value=8), max_size=8),
            min_size=1,
            max_size=8,
        ),
        st.sets(st.integers(min_value=1, max_value=8), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_adding_knowledge_never_increases_phi(self, token_sets, extra):
        token_ids = frozenset(range(1, 9))
        before = [Holder(s) for s in token_sets]
        after = [Holder(s | extra) for s in token_sets]
        assert potential(after, token_ids) <= potential(before, token_ids)
