"""Tests for the PPUSH rumor-spreading strategy (Theorem 6.1 behavior)."""

import random

import pytest

from repro.core.ppush import PPushNode
from repro.core.tokens import Token
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander, path, star
from repro.rng import SeedTree
from repro.sim.channel import ChannelPolicy
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation
from repro.sim.termination import all_hold_tokens


def run_ppush(topo, source_vertex=0, seed=0, max_rounds=10_000):
    tree = SeedTree(seed)
    rumor = Token(1, payload="the-rumor")
    nodes = {
        v: PPushNode(
            uid=v + 1,
            upper_n=topo.n,
            rng=tree.stream("node", v),
            rumor=rumor if v == source_vertex else None,
        )
        for v in range(topo.n)
    }
    sim = Simulation(
        StaticDynamicGraph(topo),
        nodes,
        b=1,
        seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(topo.n),
    )
    result = sim.run(max_rounds=max_rounds, termination=all_hold_tokens({1}))
    return result, nodes


class TestUnit:
    def test_informed_advertises_one(self):
        node = PPushNode(uid=1, upper_n=8, rng=random.Random(0),
                         rumor=Token(1))
        assert node.advertise(1, ()) == 1

    def test_uninformed_advertises_zero_and_waits(self):
        node = PPushNode(uid=1, upper_n=8, rng=random.Random(0))
        assert node.advertise(1, ()) == 0
        views = (NeighborView(uid=2, tag=1),)
        assert node.propose(1, views) is None

    def test_informed_targets_only_uninformed(self):
        node = PPushNode(uid=1, upper_n=8, rng=random.Random(0),
                         rumor=Token(1))
        views = (NeighborView(uid=2, tag=1), NeighborView(uid=3, tag=0))
        for _ in range(20):
            assert node.propose(1, views) == 3

    def test_all_informed_neighbors_no_proposal(self):
        node = PPushNode(uid=1, upper_n=8, rng=random.Random(0),
                         rumor=Token(1))
        views = (NeighborView(uid=2, tag=1),)
        assert node.propose(1, views) is None

    def test_known_tokens_interface(self):
        informed = PPushNode(uid=1, upper_n=8, rng=random.Random(0),
                             rumor=Token(5))
        uninformed = PPushNode(uid=2, upper_n=8, rng=random.Random(0))
        assert informed.known_tokens == frozenset({5})
        assert uninformed.known_tokens == frozenset()


class TestSpreading:
    @pytest.mark.parametrize(
        "topo", [path(10), cycle(12), star(10), expander(16, 4, seed=2)],
        ids=["path", "cycle", "star", "expander"],
    )
    def test_rumor_reaches_everyone(self, topo):
        result, nodes = run_ppush(topo, seed=1)
        assert result.terminated
        assert all(node.informed for node in nodes.values())

    def test_payload_intact_everywhere(self):
        result, nodes = run_ppush(path(8), seed=2)
        assert result.terminated
        assert all(
            node.rumor.payload == "the-rumor" for node in nodes.values()
        )

    def test_informed_at_round_monotone_from_source(self):
        result, nodes = run_ppush(path(8), source_vertex=0, seed=3)
        times = [nodes[v].informed_at_round for v in range(8)]
        assert times[0] == 0
        # On a path the rumor moves outward: each node is informed no
        # earlier than its predecessor toward the source.
        assert all(times[i] < times[i + 1] for i in range(7))

    def test_expander_faster_than_path(self):
        """The α-dependence of Theorem 6.1, qualitatively."""
        slow_total = 0
        fast_total = 0
        for seed in range(3):
            r_path, _ = run_ppush(path(24), seed=seed)
            r_exp, _ = run_ppush(expander(24, 4, seed=seed), seed=seed)
            slow_total += r_path.rounds
            fast_total += r_exp.rounds
        assert fast_total < slow_total
