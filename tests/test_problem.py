"""Tests for gossip instances, tokens, and the GossipNode base class."""

import random

import pytest

from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import (
    GossipInstance,
    GossipNode,
    everyone_starts_instance,
    skewed_instance,
    uniform_instance,
)
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.sim.channel import Channel, ChannelPolicy


class ConcreteNode(GossipNode):
    """Minimal concrete subclass for exercising the base class."""

    def advertise(self, round_index, neighbor_uids):
        return 0

    def propose(self, round_index, neighbors):
        return None

    def interact(self, responder, channel, round_index):
        pass


class TestToken:
    def test_defaults_origin_to_label(self):
        t = Token(token_id=5)
        assert t.origin_uid == 5

    def test_explicit_origin(self):
        t = Token(token_id=5, origin_uid=9)
        assert t.origin_uid == 9

    def test_rejects_label_below_one(self):
        with pytest.raises(ConfigurationError):
            Token(token_id=0)

    def test_payload_preserved(self):
        assert Token(token_id=3, payload="hello").payload == "hello"


class TestUniformInstance:
    def test_counts(self):
        inst = uniform_instance(n=10, k=4, seed=1)
        assert inst.n == 10
        assert inst.k == 4
        assert len(inst.token_ids) == 4

    def test_token_labels_are_origin_uids(self):
        inst = uniform_instance(n=10, k=4, seed=1)
        for vertex, tokens in inst.initial_tokens.items():
            for token in tokens:
                assert token.token_id == inst.uid_of(vertex)

    def test_uids_distinct_in_range(self):
        inst = uniform_instance(n=10, k=3, seed=2, upper_n=50)
        assert len(set(inst.uids)) == 10
        assert all(1 <= uid <= 50 for uid in inst.uids)

    def test_loose_upper_bound(self):
        inst = uniform_instance(n=8, k=2, seed=3, upper_n=64)
        assert inst.upper_n == 64

    def test_determinism(self):
        a = uniform_instance(n=10, k=4, seed=9)
        b = uniform_instance(n=10, k=4, seed=9)
        assert a.uids == b.uids
        assert a.token_ids == b.token_ids

    def test_k_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            uniform_instance(n=5, k=6, seed=0)
        with pytest.raises(ConfigurationError):
            uniform_instance(n=5, k=0, seed=0)


class TestEveryoneStarts:
    def test_k_equals_n(self):
        inst = everyone_starts_instance(n=7, seed=1)
        assert inst.k == 7
        assert len(inst.initial_tokens) == 7


class TestSkewedInstance:
    def test_single_holder_gets_all(self):
        inst = skewed_instance(n=10, k=5, seed=1, holders=1)
        assert inst.k == 5
        assert len(inst.initial_tokens) == 1
        holder = next(iter(inst.initial_tokens))
        assert len(inst.initial_tokens[holder]) == 5

    def test_labels_unique(self):
        inst = skewed_instance(n=10, k=6, seed=2, holders=2)
        labels = [t.token_id for ts in inst.initial_tokens.values() for t in ts]
        assert len(labels) == len(set(labels))

    def test_holder_bounds(self):
        with pytest.raises(ConfigurationError):
            skewed_instance(n=10, k=3, seed=0, holders=4)


class TestInstanceValidation:
    def test_duplicate_token_start_rejected(self):
        with pytest.raises(ConfigurationError):
            GossipInstance(
                n=3,
                upper_n=3,
                uids=(1, 2, 3),
                initial_tokens={0: (Token(1),), 1: (Token(1),)},
            )

    def test_upper_bound_below_n_rejected(self):
        with pytest.raises(ConfigurationError):
            GossipInstance(n=3, upper_n=2, uids=(1, 2, 3))

    def test_duplicate_uids_rejected(self):
        with pytest.raises(ConfigurationError):
            GossipInstance(n=3, upper_n=3, uids=(1, 1, 2))


class TestGossipNodeBase:
    def make_node(self, uid=1, tokens=()):
        return ConcreteNode(
            uid=uid, upper_n=64, initial_tokens=tokens, rng=random.Random(0)
        )

    def test_known_tokens(self):
        node = self.make_node(tokens=(Token(3), Token(7)))
        assert node.known_tokens == frozenset({3, 7})

    def test_store_and_query(self):
        node = self.make_node()
        node.store_token(Token(9, payload="p"))
        assert node.has_token(9)
        assert node.token(9).payload == "p"

    def test_store_rejects_out_of_range(self):
        node = self.make_node()
        with pytest.raises(ConfigurationError):
            node.store_token(Token(65))

    def test_run_transfer_moves_payload(self):
        a = self.make_node(uid=1, tokens=(Token(5, payload="from-a"),))
        b = self.make_node(uid=2)
        protocol = TransferProtocol(upper_n=64, epsilon=1e-6)
        channel = Channel(1, 1, 2, ChannelPolicy(max_control_bits=10**6))
        outcome = a.run_transfer(b, protocol, channel)
        assert outcome.moved_to_b
        assert b.has_token(5)
        assert b.token(5).payload == "from-a"

    def test_run_transfer_pulls_too(self):
        a = self.make_node(uid=1)
        b = self.make_node(uid=2, tokens=(Token(4, payload="from-b"),))
        protocol = TransferProtocol(upper_n=64, epsilon=1e-6)
        channel = Channel(1, 1, 2, ChannelPolicy(max_control_bits=10**6))
        outcome = a.run_transfer(b, protocol, channel)
        assert outcome.moved_to_a
        assert a.token(4).payload == "from-b"
