"""Cross-module property-based tests (hypothesis).

These target whole-system invariants rather than single functions: the
model's matching discipline under arbitrary protocols, conservation laws
of the potential/census diagnostics, and end-to-end solvability of
SharedBit on randomly drawn small instances.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.potential import find_coalition, potential, token_set_census
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import erdos_renyi
from repro.sim.channel import Channel
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation
from repro.sim.protocol import NodeProtocol


class ChaosNode(NodeProtocol):
    """A protocol that behaves arbitrarily-but-legally, for fuzzing the engine."""

    def __init__(self, uid, rng):
        super().__init__(uid)
        self.rng = rng
        self.interactions_by_round: dict[int, int] = {}

    def advertise(self, round_index, neighbor_uids):
        return self.rng.randint(0, 1)

    def propose(self, round_index, neighbors):
        if not neighbors or self.rng.random() < 0.4:
            return None
        return self.rng.choice(neighbors).uid

    def interact(self, responder, channel, round_index):
        channel.charge_bits(4)
        self._mark(round_index)
        responder._mark(round_index)

    def _mark(self, round_index):
        count = self.interactions_by_round.get(round_index, 0)
        self.interactions_by_round[round_index] = count + 1


@given(
    n=st.integers(min_value=4, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_engine_one_connection_per_node_property(n, seed):
    """No node is ever in two connections in one round, for any protocol."""
    topo = erdos_renyi(n, 0.5, seed=seed % 64)
    nodes = {
        v: ChaosNode(uid=v + 1, rng=random.Random(seed * 31 + v))
        for v in range(topo.n)
    }
    sim = Simulation(
        RelabelingAdversary(topo, tau=1, seed=seed),
        nodes,
        b=1,
        seed=seed,
    )
    sim.run(max_rounds=12)
    for node in nodes.values():
        for round_index, count in node.interactions_by_round.items():
            assert count == 1, (
                f"node {node.uid} had {count} connections in round "
                f"{round_index}"
            )


@given(
    token_sets=st.lists(
        st.sets(st.integers(min_value=1, max_value=12), max_size=12),
        min_size=2,
        max_size=12,
    )
)
@settings(max_examples=100, deadline=None)
def test_census_partitions_nodes(token_sets):
    class Holder:
        def __init__(self, tokens):
            self.known_tokens = frozenset(tokens)

    nodes = [Holder(s) for s in token_sets]
    census = token_set_census(nodes)
    assert sum(census.values()) == len(nodes)
    for token_set, count in census.items():
        assert count == sum(
            1 for node in nodes if node.known_tokens == token_set
        )


@given(
    token_sets=st.lists(
        st.sets(st.integers(min_value=1, max_value=10), max_size=10),
        min_size=2,
        max_size=16,
    )
)
@settings(max_examples=100, deadline=None)
def test_potential_equals_tokenwise_deficit(token_sets):
    """φ computed per node equals the deficit summed per token."""

    class Holder:
        def __init__(self, tokens):
            self.known_tokens = frozenset(tokens)

    nodes = [Holder(s) for s in token_sets]
    token_ids = frozenset(range(1, 11))
    phi = potential(nodes, token_ids)
    per_token = sum(
        sum(1 for node in nodes if t not in node.known_tokens)
        for t in token_ids
    )
    assert phi == per_token


@given(
    token_sets=st.lists(
        st.sets(st.integers(min_value=1, max_value=8), min_size=1, max_size=8),
        min_size=4,
        max_size=20,
    ),
    epsilon_pct=st.integers(min_value=50, max_value=90),
)
@settings(max_examples=100, deadline=None)
def test_coalition_size_contract(token_sets, epsilon_pct):
    """Lemma 7.3's dichotomy: solved certificate or size in [(ε/2)n, εn]."""

    class Holder:
        def __init__(self, tokens):
            self.known_tokens = frozenset(tokens)

    epsilon = epsilon_pct / 100.0
    nodes = [Holder(s) for s in token_sets]
    n = len(nodes)
    result = find_coalition(nodes, epsilon)
    if result.solved:
        assert result.size > epsilon * n
    else:
        assert result.size >= (epsilon / 2.0) * n
        assert result.size <= epsilon * n + max(
            token_set_census(nodes).values()
        )


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=8, deadline=None)
def test_sharedbit_solves_random_small_instances(seed):
    """SharedBit solves any random small instance well inside c·k·n rounds."""
    rng = random.Random(seed)
    n = rng.randint(6, 14)
    k = rng.randint(1, n // 2)
    topo = erdos_renyi(n, 0.5, seed=seed)
    instance = uniform_instance(n=topo.n, k=k, seed=seed)
    result = run_gossip(
        "sharedbit",
        RelabelingAdversary(topo, tau=1, seed=seed),
        instance,
        seed=seed,
        max_rounds=200 * k * n,
    )
    assert result.solved
    assert result.residual_potential == 0
