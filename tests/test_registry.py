"""Tests for the registry-driven plugin API (repro.registry, repro.api)."""

import textwrap

import pytest

from repro.api import Experiment
from repro.core.problem import uniform_instance
from repro.core.runner import ALGORITHMS, build_nodes, run_gossip
from repro.core.sharedbit import SharedBitConfig, SharedBitNode
from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENT_ALGORITHMS,
    RunSpec,
    SweepSpec,
    build_topology,
    run_sweep,
)
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import TOPOLOGY_FAMILIES, cycle
from repro.registry import (
    ALGORITHM_REGISTRY,
    AlgorithmDef,
    Registry,
    SCENARIO_REGISTRY,
    TOPOLOGY_REGISTRY,
    TopologyDef,
)
from repro.rng import SharedRandomness


def _sharedbit_clone_builder(ctx):
    """A synthetic algorithm: SharedBit registered under another name."""
    shared = SharedRandomness(
        ctx.tree.key("shared-string"), ctx.instance.upper_n
    )
    return {
        vertex: SharedBitNode(
            shared=shared, config=ctx.config, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }


def _clone_def(name="echo_test") -> AlgorithmDef:
    return AlgorithmDef(
        name=name,
        description="in-test SharedBit clone",
        config_class=SharedBitConfig,
        build_nodes=_sharedbit_clone_builder,
        tag_length=1,
    )


@pytest.fixture
def echo_algorithm():
    """A synthetic test-only algorithm, registered for one test."""
    with ALGORITHM_REGISTRY.temporary(_clone_def()) as defn:
        yield defn


class TestRegistryCore:
    def test_duplicate_name_raises(self):
        scratch = Registry("widget", "widgets")
        scratch.register(AlgorithmDef(name="w", description="a widget"))
        with pytest.raises(ConfigurationError, match="already registered"):
            scratch.register(AlgorithmDef(name="w", description="again"))

    def test_duplicate_builtin_raises(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            ALGORITHM_REGISTRY.register(
                AlgorithmDef(name="sharedbit", description="shadow attempt")
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty name"):
            Registry("widget", "widgets").register(
                AlgorithmDef(name="", description="anonymous")
            )

    def test_unknown_name_enumerates_registered(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ALGORITHM_REGISTRY.get("nope")
        message = str(excinfo.value)
        assert "unknown algorithm 'nope'" in message
        for name in ("blindmatch", "sharedbit", "crowdedbin", "epsilon"):
            assert name in message

    def test_unknown_topology_enumerates_registered(self):
        with pytest.raises(ConfigurationError, match="star"):
            TOPOLOGY_REGISTRY.get("torus")

    def test_find_returns_none_quietly(self):
        assert ALGORITHM_REGISTRY.find("nope") is None

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="cannot unregister"):
            ALGORITHM_REGISTRY.unregister("nope")

    def test_temporary_registration_is_scoped(self):
        assert "echo_test" not in ALGORITHM_REGISTRY
        with ALGORITHM_REGISTRY.temporary(_clone_def()):
            assert "echo_test" in ALGORITHM_REGISTRY
            assert "echo_test" in ALGORITHMS
            assert "echo_test" in EXPERIMENT_ALGORITHMS
        assert "echo_test" not in ALGORITHM_REGISTRY
        assert "echo_test" not in ALGORITHMS


class TestDefinitionMetadata:
    def test_algorithms_view_filters_experiment_only(self):
        assert "epsilon" in EXPERIMENT_ALGORITHMS
        assert "epsilon" not in ALGORITHMS
        # PPUSH registers when crowdedbin imports its module, so it
        # lands between simsharedbit and crowdedbin in the view order.
        assert tuple(ALGORITHMS) == (
            "blindmatch", "sharedbit", "simsharedbit", "ppush",
            "crowdedbin", "multibit",
        )

    def test_tag_length_resolution(self):
        from repro.core.multibit import MultiBitConfig

        multibit = ALGORITHM_REGISTRY.get("multibit")
        assert multibit.resolve_tag_length(MultiBitConfig(bits=3)) == 3
        blind = ALGORITHM_REGISTRY.get("blindmatch")
        assert blind.resolve_tag_length(blind.make_config()) == 0

    def test_stable_topology_lives_in_the_declaration(self):
        assert ALGORITHM_REGISTRY.get("crowdedbin").requires_stable_topology
        assert not ALGORITHM_REGISTRY.get("sharedbit").requires_stable_topology

    def test_topology_families_view_is_live(self):
        assert TOPOLOGY_FAMILIES["cycle"] is cycle
        defn = TopologyDef(
            name="test_shape",
            description="in-test family",
            factory=lambda n: cycle(n),
        )
        with TOPOLOGY_REGISTRY.temporary(defn):
            assert "test_shape" in TOPOLOGY_FAMILIES
            topo = build_topology(
                {"family": "test_shape", "params": {"n": 6}}
            )
            assert topo.n == 6
        assert "test_shape" not in TOPOLOGY_FAMILIES
        with pytest.raises(KeyError):
            TOPOLOGY_FAMILIES["test_shape"]

    def test_build_nodes_rejects_experiment_only(self):
        inst = uniform_instance(n=6, k=1, seed=0)
        with pytest.raises(ConfigurationError, match="experiments"):
            build_nodes("epsilon", inst, seed=1)


class TestSyntheticAlgorithmEndToEnd:
    def test_run_gossip_matches_sharedbit(self, echo_algorithm):
        graph = StaticDynamicGraph(cycle(8))
        instance = uniform_instance(n=8, k=2, seed=11)
        mine = run_gossip(
            algorithm="echo_test",
            dynamic_graph=graph,
            instance=instance,
            seed=11,
            max_rounds=30_000,
        )
        theirs = run_gossip(
            algorithm="sharedbit",
            dynamic_graph=StaticDynamicGraph(cycle(8)),
            instance=instance,
            seed=11,
            max_rounds=30_000,
        )
        # Same builder, same seed: the clone is round-for-round identical.
        assert mine.solved and mine.rounds == theirs.rounds

    def test_run_sweep_over_synthetic_algorithm(self, echo_algorithm):
        sweep = SweepSpec(
            name="registry-e2e",
            base={
                "algorithm": "echo_test",
                "graph": {"family": "cycle", "params": {"n": 8}},
                "instance": {"kind": "uniform", "k": 2},
                "max_rounds": 30_000,
                "engine": {"trace_sample_every": 1024},
            },
            grid={"algorithm": ["sharedbit", "echo_test"]},
            seeds=(11,),
        )
        result = run_sweep(sweep)
        rounds = {
            summary.point["algorithm"]: summary.median_rounds
            for summary in result.points
        }
        assert result.points[0].all_solved and result.points[1].all_solved
        assert rounds["echo_test"] == rounds["sharedbit"]

    def test_runspec_accepts_synthetic_algorithm(self, echo_algorithm):
        spec = RunSpec.from_payload({
            "algorithm": "echo_test",
            "graph": {"family": "cycle", "params": {"n": 8}},
            "seed": 1,
            "max_rounds": 100,
        })
        assert spec.algorithm == "echo_test"


PLUGIN_SOURCE = textwrap.dedent(
    """
    \"\"\"Out-of-tree plugin: registers an algorithm without touching repro.\"\"\"

    from repro.core.sharedbit import SharedBitConfig, SharedBitNode
    from repro.registry import register_algorithm
    from repro.rng import SharedRandomness


    @register_algorithm(
        name="plugin_echo",
        description="plugin-registered SharedBit clone",
        config_class=SharedBitConfig,
        tag_length=1,
    )
    def build_plugin_echo(ctx):
        shared = SharedRandomness(
            ctx.tree.key("shared-string"), ctx.instance.upper_n
        )
        return {
            v: SharedBitNode(shared=shared, config=ctx.config,
                             **ctx.common(v))
            for v in ctx.vertices()
        }
    """
)


class TestPluginLoading:
    def test_cli_runs_plugin_algorithm_from_file(self, tmp_path, capsys):
        from repro.cli import main

        plugin = tmp_path / "my_plugin.py"
        plugin.write_text(PLUGIN_SOURCE)
        try:
            code = main([
                "--plugin", str(plugin),
                "run", "--algorithm", "plugin_echo", "--graph", "cycle",
                "--n", "10", "--k", "2", "--seed", "1",
                "--max-rounds", "30000",
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "plugin_echo on cycle" in out
            assert "solved" in out
            # Loading the same file again is a no-op, not a duplicate.
            assert main([
                "--plugin", str(plugin),
                "run", "--algorithm", "plugin_echo", "--graph", "cycle",
                "--n", "10", "--k", "2", "--seed", "1",
                "--max-rounds", "30000",
            ]) == 0
        finally:
            ALGORITHM_REGISTRY.unregister("plugin_echo")

    def test_cli_list_shows_plugin_algorithm(self, tmp_path, capsys):
        from repro.cli import main

        plugin = tmp_path / "my_list_plugin.py"
        plugin.write_text(PLUGIN_SOURCE.replace("plugin_echo", "plugin_ls"))
        try:
            assert main(["--plugin", str(plugin), "list"]) == 0
            assert "plugin_ls" in capsys.readouterr().out
        finally:
            ALGORITHM_REGISTRY.unregister("plugin_ls")

    def test_cli_list_shows_plugin_transport(self, tmp_path, capsys):
        """The one-decorator-surface invariant extends to transports:
        a --plugin file can register one and `list` shows it."""
        from repro.cli import main
        from repro.registry import TRANSPORT_REGISTRY

        plugin = tmp_path / "transport_plugin.py"
        plugin.write_text(textwrap.dedent(
            """
            from repro.registry import register_transport


            @register_transport(
                name="plugin_wire",
                description="plugin-registered null transport",
            )
            def deploy_plugin_wire(**kwargs):
                return None
            """
        ))
        try:
            assert main(["--plugin", str(plugin), "list"]) == 0
            out = capsys.readouterr().out
            assert "plugin_wire" in out
        finally:
            TRANSPORT_REGISTRY.unregister("plugin_wire")

    def test_missing_plugin_file_raises(self):
        from repro.registry import load_plugin

        with pytest.raises(ConfigurationError, match="does not exist"):
            load_plugin("/nonexistent/plugin.py")
        with pytest.raises(ConfigurationError, match="cannot import"):
            load_plugin("no_such_module_xyz")


class TestCliList:
    def test_list_prints_every_section(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in (
            "algorithms:", "topology families:", "dynamics kinds:",
            "instance kinds:", "scenarios:", "transports:",
        ):
            assert heading in out
        assert "crowdedbin" in out and "tau=inf" in out
        assert "experiments-layer only" in out  # epsilon's marker
        assert "relabeling" in out and "token_at" in out
        assert "festival" in out
        assert "tcp" in out and "live_smoke" in out  # PR 7 surfaces


class TestFluentApi:
    def test_single_run(self):
        record = (
            Experiment("sharedbit")
            .on_graph("cycle", n=8)
            .with_instance("uniform", k=2)
            .with_engine(trace_sample_every=1024)
            .seeded(11)
            .rounds(30_000)
            .run()
        )
        assert record["solved"]
        assert record["rounds"] >= 1

    def test_unknown_names_fail_at_the_call_site(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            Experiment("nope")
        with pytest.raises(ConfigurationError, match="topology family"):
            Experiment("sharedbit").on_graph("torus", n=8)
        with pytest.raises(ConfigurationError, match="dynamics kind"):
            Experiment("sharedbit").with_dynamics("warp")
        with pytest.raises(ConfigurationError, match="instance kind"):
            Experiment("sharedbit").with_instance("nowhere")

    def test_run_requires_a_graph(self):
        with pytest.raises(ConfigurationError, match="no graph chosen"):
            Experiment("sharedbit").run_spec()

    def test_sweep_builder_round_trips(self):
        spec = (
            Experiment("sharedbit")
            .on_graph("cycle", n=8)
            .rounds(30_000)
            .sweep("fluent")
            .vary("instance.k", [1, 2])
            .seeds(11)
            .override(
                set={"max_rounds": 40_000},
                when={"instance.k": 2},
            )
            .spec()
        )
        assert spec.points() == [{"instance.k": 1}, {"instance.k": 2}]
        assert spec.run_payload({"instance.k": 2}, 11)["max_rounds"] == 40_000
        again = SweepSpec.from_json(spec.to_json())
        assert again.spec_hash() == spec.spec_hash()

    def test_sweep_run_executes(self):
        result = (
            Experiment("blindmatch")
            .on_graph("complete", n=6)
            .with_engine(trace_sample_every=1024)
            .rounds(30_000)
            .sweep("fluent-exec")
            .vary("instance.k", [1, 2])
            .seeds(11)
            .run()
        )
        assert len(result.points) == 2
        assert all(summary.all_solved for summary in result.points)

    def test_scenario_registry_backs_scenarios_mapping(self):
        from repro.workloads.scenarios import SCENARIOS

        assert set(SCENARIOS) == set(SCENARIO_REGISTRY.names())
        assert SCENARIOS["festival"] is SCENARIO_REGISTRY.get(
            "festival"
        ).factory
