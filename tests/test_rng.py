"""Tests for repro.rng: seed trees, PRF bits, shared randomness."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    SeedTree,
    SharedRandomness,
    prf_bits,
    prf_bytes,
    prf_uniform_int,
)

KEY = b"k" * 32
OTHER_KEY = b"j" * 32


class TestPrfBytes:
    def test_deterministic(self):
        assert prf_bytes(KEY, (1, 2), 16) == prf_bytes(KEY, (1, 2), 16)

    def test_key_separation(self):
        assert prf_bytes(KEY, (1, 2), 16) != prf_bytes(OTHER_KEY, (1, 2), 16)

    def test_index_separation(self):
        assert prf_bytes(KEY, (1, 2), 16) != prf_bytes(KEY, (2, 1), 16)

    def test_length_extension_prefix_stable(self):
        short = prf_bytes(KEY, (5,), 16)
        long = prf_bytes(KEY, (5,), 80)
        assert long[:16] == short

    def test_unambiguous_index_encoding(self):
        # (1, 23) and (12, 3) must not collide via naive concatenation.
        assert prf_bytes(KEY, (1, 23), 8) != prf_bytes(KEY, (12, 3), 8)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            prf_bytes(KEY, (1,), 0)


class TestPrfBits:
    def test_width(self):
        for nbits in (1, 7, 8, 9, 63, 64, 65):
            value = prf_bits(KEY, (3,), nbits)
            assert 0 <= value < (1 << nbits)

    def test_single_bit_is_binary(self):
        values = {prf_bits(KEY, (i,), 1) for i in range(64)}
        assert values == {0, 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prf_bits(KEY, (1,), 0)


class TestPrfUniformInt:
    def test_bounds(self):
        for bound in (1, 2, 3, 7, 100):
            for i in range(20):
                assert 0 <= prf_uniform_int(KEY, (i,), bound) < bound

    def test_bound_one_is_zero(self):
        assert prf_uniform_int(KEY, (9,), 1) == 0

    def test_roughly_uniform_over_nonpower_bound(self):
        # Bound 3 forces rejection sampling; check all residues occur.
        counts = [0, 0, 0]
        for i in range(300):
            counts[prf_uniform_int(KEY, (i,), 3)] += 1
        assert min(counts) > 50

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            prf_uniform_int(KEY, (1,), 0)


class TestSeedTree:
    def test_same_path_same_stream(self):
        t = SeedTree(7)
        assert t.stream("a", 1).random() == t.stream("a", 1).random()

    def test_different_paths_differ(self):
        t = SeedTree(7)
        assert t.stream("a").random() != t.stream("b").random()

    def test_child_prefixes_path(self):
        t = SeedTree(7)
        assert (
            t.child("x").stream("y").random()
            == t.stream("x", "y").random()
        )

    def test_different_roots_differ(self):
        assert SeedTree(1).stream("a").random() != SeedTree(2).stream("a").random()

    def test_key_is_32_bytes(self):
        assert len(SeedTree(3).key("shared")) == 32

    def test_streams_are_independent_instances(self):
        t = SeedTree(7)
        s1, s2 = t.stream("a"), t.stream("a")
        s1.random()
        # s2 unaffected by s1's consumption.
        assert s2.random() == t.stream("a").random()


class TestSharedRandomness:
    def test_shared_instances_agree(self):
        a = SharedRandomness(KEY, 64)
        b = SharedRandomness(KEY, 64)
        for group in (1, 2, 77):
            for bundle in (0, 5, 64):
                assert a.token_bit(group, bundle) == b.token_bit(group, bundle)
        assert a == b

    def test_different_keys_disagree_somewhere(self):
        a = SharedRandomness(KEY, 64)
        b = SharedRandomness(OTHER_KEY, 64)
        bits_a = [a.token_bit(1, i) for i in range(64)]
        bits_b = [b.token_bit(1, i) for i in range(64)]
        assert bits_a != bits_b

    def test_token_bits_look_fair(self):
        shared = SharedRandomness(KEY, 512)
        ones = sum(shared.token_bit(1, bundle) for bundle in range(512))
        assert 180 < ones < 332  # ~6 sigma around 256

    def test_fresh_bits_each_group(self):
        shared = SharedRandomness(KEY, 128)
        g1 = [shared.token_bit(1, i) for i in range(128)]
        g2 = [shared.token_bit(2, i) for i in range(128)]
        assert g1 != g2

    def test_selection_index_in_bound(self):
        shared = SharedRandomness(KEY, 32)
        for bound in (1, 2, 5, 31):
            for group in range(10):
                assert 0 <= shared.selection_index(group, 7, bound) < bound

    def test_from_seed_roundtrip(self):
        assert SharedRandomness.from_seed(5, 16) == SharedRandomness.from_seed(5, 16)
        assert SharedRandomness.from_seed(5, 16) != SharedRandomness.from_seed(6, 16)

    def test_bundle_validation(self):
        shared = SharedRandomness(KEY, 16)
        with pytest.raises(ValueError):
            shared.token_bit(-1, 0)
        with pytest.raises(ValueError):
            shared.token_bit(0, 17)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SharedRandomness(KEY, 1)


@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=2, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_prf_uniform_always_in_bound(index, bound):
    assert 0 <= prf_uniform_int(KEY, (index,), bound) < bound


@given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_prf_bits_deterministic_for_any_index(path):
    index = tuple(path)
    assert prf_bits(KEY, index, 32) == prf_bits(KEY, index, 32)
