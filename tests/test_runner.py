"""Tests for the high-level runner: wiring, gauges, validation."""

import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import (
    ALGORITHMS,
    build_nodes,
    coverage_gauge,
    potential_gauge,
    run_gossip,
)
from repro.errors import ConfigurationError
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander


class TestBuildNodes:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_builds_one_node_per_vertex(self, algorithm):
        # PPUSH spreads exactly one rumor, so it builds from k=1.
        inst = uniform_instance(n=8, k=1 if algorithm == "ppush" else 2,
                                seed=1)
        nodes = build_nodes(algorithm, inst, seed=1)
        assert set(nodes) == set(range(8))
        assert {node.uid for node in nodes.values()} == set(inst.uids)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_initial_tokens_placed(self, algorithm):
        inst = uniform_instance(n=8, k=1 if algorithm == "ppush" else 3,
                                seed=2)
        nodes = build_nodes(algorithm, inst, seed=2)
        for vertex, tokens in inst.initial_tokens.items():
            for token in tokens:
                assert nodes[vertex].has_token(token.token_id)

    def test_unknown_algorithm_rejected(self):
        inst = uniform_instance(n=4, k=1, seed=0)
        with pytest.raises(ConfigurationError):
            build_nodes("push-pull", inst, seed=0)

    def test_deterministic_construction(self):
        inst = uniform_instance(n=8, k=2, seed=3)
        a = build_nodes("sharedbit", inst, seed=3)
        b = build_nodes("sharedbit", inst, seed=3)
        for vertex in a:
            assert a[vertex].uid == b[vertex].uid
            assert a[vertex].known_tokens == b[vertex].known_tokens


class TestRunGossip:
    def test_result_fields(self):
        inst = uniform_instance(n=8, k=2, seed=1)
        result = run_gossip(
            "sharedbit",
            StaticDynamicGraph(cycle(8)),
            inst,
            seed=1,
            max_rounds=20_000,
        )
        assert result.algorithm == "sharedbit"
        assert result.solved
        assert result.rounds >= 1
        assert result.residual_potential == 0
        assert result.coverage() == [2] * 8

    def test_graph_instance_size_mismatch_rejected(self):
        inst = uniform_instance(n=8, k=2, seed=1)
        with pytest.raises(ConfigurationError):
            run_gossip(
                "sharedbit",
                StaticDynamicGraph(cycle(6)),
                inst,
                seed=1,
                max_rounds=100,
            )

    def test_unsolved_reported_not_raised(self):
        inst = uniform_instance(n=8, k=2, seed=1)
        result = run_gossip(
            "blindmatch",
            StaticDynamicGraph(cycle(8)),
            inst,
            seed=1,
            max_rounds=2,  # far too few
        )
        assert not result.solved
        assert result.rounds == 2

    def test_determinism_of_full_run(self):
        inst = uniform_instance(n=10, k=2, seed=5)

        def once():
            return run_gossip(
                "sharedbit",
                StaticDynamicGraph(expander(10, 4, seed=2)),
                inst,
                seed=5,
                max_rounds=20_000,
            ).rounds

        assert once() == once()

    def test_gauges_flow_into_trace(self):
        inst = uniform_instance(n=8, k=2, seed=1)
        result = run_gossip(
            "sharedbit",
            StaticDynamicGraph(cycle(8)),
            inst,
            seed=1,
            max_rounds=20_000,
            gauges={
                "phi": potential_gauge(inst.token_ids),
                "coverage": coverage_gauge(inst.token_ids),
            },
            gauge_every=1,
        )
        phi_series = [v for _, v in result.trace.gauge_series("phi")]
        assert phi_series  # recorded
        # φ is non-increasing (nodes never unlearn).
        assert all(a >= b for a, b in zip(phi_series, phi_series[1:]))
        assert phi_series[-1] == 0

    def test_loose_upper_bound_still_solves(self):
        """Footnote 4: N may exceed n; algorithms must still work."""
        inst = uniform_instance(n=8, k=2, seed=2, upper_n=32)
        for algorithm in ("blindmatch", "sharedbit", "simsharedbit"):
            result = run_gossip(
                algorithm,
                StaticDynamicGraph(expander(8, 3, seed=1)),
                inst,
                seed=2,
                max_rounds=60_000,
            )
            assert result.solved, algorithm
