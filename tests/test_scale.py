"""Tests for the million-node scale layer.

Covers the pieces that let one machine hold n = 10^6: the buffer arena
behind the array engine's per-round scratch, the object-path memory
guard, bounded traces, lazy per-node rng streams, the CSR-direct
ring-expander topology (and the registry bypasses that avoid building
nx graphs nobody reads), sharded streaming sweeps, and the benchmark
ledger's dirty-tree guard.  The byte-identity angles (int32 vs int64
CSR, grid vs blocked sweep) live in tests/test_adjacency.py and
tests/test_dynamic.py next to the code they pin.
"""

import importlib.util
import json
from pathlib import Path

import networkx as nx
import numpy as np
import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.errors import ConfigurationError, MemoryBudgetError
from repro.experiments import SweepSpec, build_dynamic_graph, run_sweep
from repro.experiments.results import ShardedRunLog, load_streamed
from repro.graphs.dynamic import (
    TAU_INFINITY,
    CSRStaticGraph,
    GeometricMobilityGraph,
    StaticDynamicGraph,
    ring_expander_graph,
)
from repro.graphs.topologies import cycle
from repro.rng import LazyStream, SeedTree
from repro.sim.adjacency import CSRAdjacency
from repro.sim.arena import BufferArena
from repro.sim.trace import RoundRecord, Trace


def streamable_base(n=64, **extra) -> dict:
    """A small sweep base exercising the same spec shape bench_scale
    streams at n = 10^6 (ring_expander family, bounded trace)."""
    base = {
        "algorithm": "sharedbit",
        "graph": {
            "family": "ring_expander",
            "params": {"n": n, "degree": 6, "seed": 1},
        },
        "dynamic": {"kind": "static"},
        "instance": {"kind": "uniform", "k": 1},
        "max_rounds": 500,
        "engine": {"trace_sample_every": 8, "trace_max_records": 64},
    }
    base.update(extra)
    return base


class TestBufferArena:
    def test_same_name_reuses_memory(self):
        arena = BufferArena()
        first = arena.take("tags", 16, np.int64)
        first[:] = 7
        again = arena.take("tags", 16, np.int64)
        assert again is first  # same memory, contents untouched
        assert again[0] == 7

    def test_shape_change_reallocates(self):
        arena = BufferArena()
        small = arena.take("tags", 8, np.int64)
        grown = arena.take("tags", 12, np.int64)
        assert grown is not small
        assert grown.shape == (12,)
        # The grown buffer becomes the cached one.
        assert arena.take("tags", 12, np.int64) is grown

    def test_dtype_change_reallocates(self):
        arena = BufferArena()
        wide = arena.take("mask", 8, np.int64)
        narrow = arena.take("mask", 8, np.bool_)
        assert narrow is not wide
        assert narrow.dtype == np.bool_

    def test_names_never_alias(self):
        arena = BufferArena()
        a = arena.take("a", 8, np.int64)
        b = arena.take("b", 8, np.int64)
        assert a is not b
        assert len(arena) == 2

    def test_nbytes_accounts_held_buffers(self):
        arena = BufferArena()
        arena.take("a", 4, np.int64)
        arena.take("b", 8, np.int32)
        assert arena.nbytes() == 4 * 8 + 8 * 4

    def test_tuple_shapes(self):
        arena = BufferArena()
        grid = arena.take("grid", (3, 5), np.float64)
        assert grid.shape == (3, 5)
        assert arena.take("grid", (3, 5), np.float64) is grid


class TestRoundBuffer:
    def _bound(self, arena=None):
        csr = CSRAdjacency.from_graph(cycle(6).graph)
        return csr.bind_uids(np.arange(100, 106, dtype=np.int64),
                             arena=arena)

    def test_without_arena_allocates_fresh(self):
        bound = self._bound(arena=None)
        a = bound.round_buffer("x", 6, np.int64, fill=0)
        b = bound.round_buffer("x", 6, np.int64, fill=0)
        assert a is not b
        assert a.tolist() == [0] * 6

    def test_with_arena_reuses_and_refills(self):
        bound = self._bound(arena=BufferArena())
        a = bound.round_buffer("x", 6, np.int64, fill=-1)
        a[:] = 9
        b = bound.round_buffer("x", 6, np.int64, fill=-1)
        assert b is a
        assert b.tolist() == [-1] * 6  # fill re-applied every round

    def test_no_fill_leaves_contents(self):
        bound = self._bound(arena=BufferArena())
        a = bound.round_buffer("x", 6, np.int64)
        a[:] = 5
        b = bound.round_buffer("x", 6, np.int64)
        assert b is a and b.tolist() == [5] * 6


class TestMemoryBudgetGuard:
    def _run(self, **kwargs):
        graph = StaticDynamicGraph(cycle(8))
        instance = uniform_instance(n=8, k=1, seed=0)
        return run_gossip("sharedbit", graph, instance, seed=1,
                          max_rounds=2000, termination_every=8, **kwargs)

    def test_object_path_over_budget_raises(self):
        with pytest.raises(MemoryBudgetError, match="MB"):
            self._run(engine_mode="object", object_path_max_n=4)

    def test_error_is_catchable_generically(self):
        with pytest.raises(ValueError):
            self._run(engine_mode="object", object_path_max_n=4)
        with pytest.raises(ConfigurationError):
            self._run(engine_mode="object", object_path_max_n=4)

    def test_auto_resolves_to_array_and_never_trips(self):
        # auto at a size past the budget elects the array path, so the
        # guard (which prices the *object* path) must not fire.
        result = self._run(engine_mode="auto", object_path_max_n=4)
        assert result.rounds > 0

    def test_none_disables_the_guard(self):
        result = self._run(engine_mode="object", object_path_max_n=None)
        assert result.rounds > 0

    def test_message_names_the_escape_hatches(self):
        with pytest.raises(MemoryBudgetError,
                           match="object_path_max_n=8"):
            self._run(engine_mode="object", object_path_max_n=4)


class TestTraceBoundedMemory:
    @staticmethod
    def _fill(trace: Trace, rounds: int, gauge_at: int | None = None):
        for r in range(1, rounds + 1):
            gauges = {"coverage": 0.5} if r == gauge_at else {}
            trace.record(RoundRecord(
                round_index=r, proposals=1, connections=1,
                tokens_moved=0, control_bits=0, gauges=gauges,
            ))

    def test_thins_to_bound(self):
        trace = Trace(sample_every=1, max_records=8)
        self._fill(trace, 100)
        assert len(trace.records) <= 8
        # sample_every widened by doublings; the kept set is exactly
        # what that final rate would have kept from the start.
        rate = trace.sample_every
        assert rate > 1 and (rate & (rate - 1)) == 0
        kept = [rec.round_index for rec in trace.records]
        assert kept == sorted({1} | {r for r in range(1, 101)
                                     if r % rate == 0})

    def test_thinning_is_arrival_independent(self):
        # A bound hit early and a bound hit late converge on the same
        # record set — rates divide their successors.
        tight = Trace(sample_every=1, max_records=4)
        loose = Trace(sample_every=1, max_records=12)
        self._fill(tight, 200)
        self._fill(loose, 200)
        tight_rounds = {rec.round_index for rec in tight.records}
        loose_rounds = {rec.round_index for rec in loose.records}
        assert tight_rounds <= loose_rounds

    def test_round_one_and_gauges_survive(self):
        trace = Trace(sample_every=1, max_records=6)
        self._fill(trace, 150, gauge_at=37)
        kept = [rec.round_index for rec in trace.records]
        assert 1 in kept
        assert 37 in kept  # gauge-carrying record is an unconditional keep

    def test_totals_stay_exact(self):
        trace = Trace(sample_every=1, max_records=4)
        self._fill(trace, 100)
        assert trace.total_rounds == 100
        assert trace.total_proposals == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(max_records=0)
        Trace(max_records=None)  # explicit None is fine

    def test_engine_threads_the_bound(self):
        graph = StaticDynamicGraph(cycle(8))
        instance = uniform_instance(n=8, k=2, seed=3)
        result = run_gossip(
            "sharedbit", graph, instance, seed=1, max_rounds=5000,
            trace_sample_every=1, trace_max_records=16,
            termination_every=8,
        )
        trace = result.trace
        assert len(trace.records) <= 16
        assert trace.total_rounds == result.rounds


class TestLazyStream:
    def test_draws_match_eager_stream(self):
        eager = SeedTree(5).stream("node", 3)
        lazy = SeedTree(5).lazy_stream("node", 3)
        assert [eager.random() for _ in range(4)] == \
               [lazy.random() for _ in range(4)]
        assert eager.getrandbits(16) == lazy.getrandbits(16)
        assert eager.randrange(1000) == lazy.randrange(1000)

    def test_materializes_only_on_use(self):
        calls = []

        def factory():
            calls.append(1)
            import random
            return random.Random(7)

        stream = LazyStream(factory)
        assert calls == []  # construction is free
        stream.random()
        stream.random()
        assert calls == [1]  # built exactly once

    def test_bound_methods_cached(self):
        lazy = SeedTree(5).lazy_stream("node", 0)
        first = lazy.random
        assert lazy.random is first  # no __getattr__ round trip after 1st

    def test_distinct_paths_distinct_streams(self):
        tree = SeedTree(5)
        a = tree.lazy_stream("node", 0)
        b = tree.lazy_stream("node", 1)
        assert a.random() != b.random()


class TestRingExpander:
    def test_csr_direct_and_int32(self):
        graph = ring_expander_graph(200, degree=6, seed=1)
        assert isinstance(graph, CSRStaticGraph)
        csr = graph.csr_at(1)
        assert csr.indptr.dtype == np.int32
        assert csr.indices.dtype == np.int32
        assert graph.tau == TAU_INFINITY

    def test_connected_and_near_regular(self):
        graph = ring_expander_graph(300, degree=6, seed=2)
        nxg = graph.graph_at(1)
        assert nx.is_connected(nxg)
        degrees = graph.csr_at(1).degrees
        # Union of 3 Hamiltonian cycles: degree 6 minus rare collisions.
        assert degrees.max() <= 6
        assert degrees.mean() > 5.5

    def test_nx_fallback_matches_csr(self):
        graph = ring_expander_graph(64, degree=4, seed=3)
        rebuilt = CSRAdjacency.from_graph(graph.graph_at(1))
        assert graph.csr_at(1).same_structure(rebuilt)

    def test_csr_dtype_recast(self):
        graph = ring_expander_graph(64, degree=4, seed=3)
        narrow = graph.csr_at(1)
        graph.csr_dtype = np.dtype(np.int64)
        wide = graph.csr_at(1)
        assert wide.indices.dtype == np.int64
        assert np.array_equal(wide.indptr, narrow.indptr)
        assert np.array_equal(wide.indices, narrow.indices)

    def test_determinism(self):
        a = ring_expander_graph(100, degree=6, seed=9)
        b = ring_expander_graph(100, degree=6, seed=9)
        assert a.csr_at(1).same_structure(b.csr_at(1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ring_expander_graph(2)
        with pytest.raises(ConfigurationError):
            ring_expander_graph(10, degree=3)  # odd
        with pytest.raises(ConfigurationError):
            ring_expander_graph(6, degree=6)  # degree >= n


class TestRegistryBypasses:
    def test_ring_expander_static_skips_nx(self, monkeypatch):
        import repro.experiments.specs as specs

        def forbidden(graph_spec):
            raise AssertionError(f"built an nx topology for {graph_spec}")

        monkeypatch.setattr(specs, "build_topology", forbidden)
        graph = build_dynamic_graph(
            {"family": "ring_expander",
             "params": {"n": 64, "degree": 6, "seed": 1}},
            {"kind": "static"}, seed=9,
        )
        assert isinstance(graph, CSRStaticGraph)

    def test_topology_free_dynamics_skip_nx(self, monkeypatch):
        import repro.experiments.specs as specs

        def forbidden(graph_spec):
            raise AssertionError(f"built an nx topology for {graph_spec}")

        monkeypatch.setattr(specs, "build_topology", forbidden)
        graph = build_dynamic_graph(
            {"family": "expander", "params": {"n": 40, "degree": 4,
                                              "seed": 1}},
            {"kind": "geometric", "radius": 0.3, "step": 0.05, "tau": 2},
            seed=3,
        )
        assert isinstance(graph, GeometricMobilityGraph)
        assert graph.n == 40

    def test_bypass_matches_general_path(self):
        # The shim must be behavior-preserving: same dynamic graph as
        # the build that materializes the (ignored) nx topology.
        spec = {"family": "expander",
                "params": {"n": 24, "degree": 4, "seed": 1}}
        dyn = {"kind": "geometric", "radius": 0.35, "step": 0.05, "tau": 1}
        via_shim = build_dynamic_graph(spec, dyn, seed=3)
        via_topo = GeometricMobilityGraph(
            n=24, radius=0.35, step=0.05, tau=1, seed=3)
        for r in (1, 3, 7):
            assert set(via_shim.graph_at(r).edges) == \
                   set(via_topo.graph_at(r).edges)

    def test_bad_build_dynamic_params_rejected(self):
        with pytest.raises(ConfigurationError, match="ring_expander"):
            build_dynamic_graph(
                {"family": "ring_expander",
                 "params": {"n": 64, "bogus": 1}},
                {"kind": "static"}, seed=9,
            )


class TestStreamedSweeps:
    def _spec(self, **kwargs) -> SweepSpec:
        defaults = dict(
            name="stream-test",
            base=streamable_base(),
            grid={"instance.k": [1, 2]},
            seeds=(11, 23),
        )
        defaults.update(kwargs)
        return SweepSpec(**defaults)

    def test_streamed_aggregation_byte_identical(self, tmp_path):
        spec = self._spec()
        in_memory = run_sweep(spec)
        streamed = run_sweep(spec, stream_to=tmp_path / "stream")
        assert in_memory.to_json() == streamed.to_json()

    def test_stream_layout_on_disk(self, tmp_path):
        spec = self._spec()
        run_sweep(spec, stream_to=tmp_path / "s")
        index = json.loads((tmp_path / "s" / "index.json").read_text())
        assert index["total_runs"] == len(spec.runs())
        assert index["sweep_hash"] == spec.spec_hash()
        for shard in index["shards"]:
            assert (tmp_path / "s" / shard).exists()

    def test_stale_shards_truncated(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        (target / "shard-99999.jsonl").write_text("junk\n")
        (target / "index.json").write_text("{}")
        run_sweep(self._spec(), stream_to=target)
        assert not (target / "shard-99999.jsonl").exists()
        assert json.loads((target / "index.json").read_text())["total_runs"]

    def test_cached_runs_also_stream(self, tmp_path):
        spec = self._spec()
        baseline = run_sweep(spec, cache_dir=tmp_path / "cache")
        # Second sweep is all cache hits; they must still stream.
        streamed = run_sweep(spec, cache_dir=tmp_path / "cache",
                             stream_to=tmp_path / "s")
        assert baseline.to_json() == streamed.to_json()
        index = json.loads((tmp_path / "s" / "index.json").read_text())
        assert index["total_runs"] == len(spec.runs())

    def test_shard_rollover(self, tmp_path):
        spec = self._spec()
        log = ShardedRunLog(tmp_path / "s", shard_size=2)
        for i in range(5):
            log.append(i, {"rounds": i})
        log.finalize(spec)
        index = json.loads((tmp_path / "s" / "index.json").read_text())
        assert len(index["shards"]) == 3
        # finalize records the true count even when it disagrees with
        # the spec; load_streamed is where completeness is enforced.
        assert index["total_runs"] == 5
        records = load_streamed(tmp_path / "s")
        assert records == {i: {"rounds": i} for i in range(5)}

    def test_load_streamed_missing_stream(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no sealed stream"):
            load_streamed(tmp_path / "nothing")

    def test_load_streamed_wrong_format(self, tmp_path):
        (tmp_path / "index.json").write_text('{"format": 999}')
        with pytest.raises(ConfigurationError, match="format"):
            load_streamed(tmp_path)

    def test_load_streamed_incomplete(self, tmp_path):
        spec = self._spec()
        target = tmp_path / "s"
        run_sweep(spec, stream_to=target)
        index = json.loads((target / "index.json").read_text())
        shard = target / index["shards"][0]
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ConfigurationError, match="incomplete"):
            load_streamed(target)

    def test_shard_size_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardedRunLog(tmp_path / "s", shard_size=0)


def _load_bench_common():
    path = Path(__file__).resolve().parent.parent / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        "bench_common_under_test", path / "_common.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDirtyTreeGuard:
    @pytest.fixture()
    def common(self):
        return _load_bench_common()

    @staticmethod
    def _stamp(rev):
        return lambda: {"git_rev": rev, "date": "2026-08-07"}

    def test_dirty_rev_refused(self, common, monkeypatch, tmp_path):
        monkeypatch.setattr(common, "_provenance",
                            self._stamp("abc1234-dirty"))
        ledger = tmp_path / "BENCH_test.json"
        with pytest.raises(common.DirtyTreeError, match="allow-dirty"):
            common.record_bench("t:case", {"rounds": 1}, path=ledger)
        assert not ledger.exists()  # refused before any write

    def test_allow_dirty_overrides(self, common, monkeypatch, tmp_path):
        monkeypatch.setattr(common, "_provenance",
                            self._stamp("abc1234-dirty"))
        ledger = tmp_path / "BENCH_test.json"
        common.record_bench("t:case", {"rounds": 1}, allow_dirty=True,
                            path=ledger)
        data = json.loads(ledger.read_text())
        assert data["t:case"]["git_rev"] == "abc1234-dirty"

    def test_clean_rev_records(self, common, monkeypatch, tmp_path):
        monkeypatch.setattr(common, "_provenance", self._stamp("abc1234"))
        ledger = tmp_path / "BENCH_test.json"
        common.record_bench("t:case", {"rounds": 2}, path=ledger)
        data = json.loads(ledger.read_text())
        assert data["t:case"]["rounds"] == 2
        assert data["t:case"]["git_rev"] == "abc1234"
        assert data["t:case"]["date"] == "2026-08-07"

    def test_dirty_error_is_runtime_error(self, common):
        assert issubclass(common.DirtyTreeError, RuntimeError)
