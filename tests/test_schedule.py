"""Tests for the CrowdedBin schedule arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import CrowdedBinSchedule
from repro.errors import ConfigurationError


def make(upper_n=16, beta=2, gamma=2):
    return CrowdedBinSchedule(upper_n=upper_n, beta=beta, gamma=gamma)


class TestShape:
    def test_log_n(self):
        assert make(upper_n=16).log_n == 4
        assert make(upper_n=17).log_n == 5
        assert make(upper_n=64).log_n == 6

    def test_derived_sizes(self):
        s = make(upper_n=16, beta=2, gamma=3)
        assert s.num_instances == 4
        assert s.ell == 8
        assert s.blocks_per_bin == 12
        assert s.block_len == 8 + 4
        assert s.crowded_threshold == 12
        assert s.max_tag == 255

    def test_bins_are_powers_of_two(self):
        s = make()
        assert [s.bins(i) for i in range(1, 5)] == [2, 4, 8, 16]

    def test_phase_len(self):
        s = make(upper_n=16, beta=2, gamma=2)
        # k_1=2 bins x 8 blocks x 12 rounds = 192 instance rounds.
        assert s.phase_len(1) == 192
        assert s.phase_len(2) == 384
        assert s.phase_len_real(1) == 192 * 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrowdedBinSchedule(upper_n=2, beta=1, gamma=1)
        with pytest.raises(ConfigurationError):
            CrowdedBinSchedule(upper_n=16, beta=0, gamma=1)
        with pytest.raises(ConfigurationError):
            make().bins(0)
        with pytest.raises(ConfigurationError):
            make().bins(99)


class TestMultiplexing:
    def test_round_robin_instances(self):
        s = make(upper_n=16)  # log_n = 4
        assert [s.instance_of_round(r)[0] for r in range(1, 9)] == [
            1, 2, 3, 4, 1, 2, 3, 4,
        ]

    def test_instance_rounds_advance_per_group(self):
        s = make(upper_n=16)
        assert s.instance_of_round(1) == (1, 1)
        assert s.instance_of_round(5) == (1, 2)
        assert s.instance_of_round(4) == (4, 1)
        assert s.instance_of_round(8) == (4, 2)

    def test_rounds_one_indexed(self):
        with pytest.raises(ConfigurationError):
            make().instance_of_round(0)


class TestLocate:
    def test_first_round_position(self):
        s = make()
        pos = s.locate(1)
        assert pos.instance == 1
        assert pos.phase == 0
        assert pos.bin_index == 0
        assert pos.block == 0
        assert pos.offset == 0
        assert pos.is_spelling
        assert pos.is_phase_start

    def test_spelling_to_ppush_transition(self):
        s = make(upper_n=16, beta=2, gamma=2)  # ell=8, block_len=12
        # Instance 1 occupies rounds 1, 5, 9, ...: its t-th round is 4(t-1)+1.
        t_first_ppush = s.ell + 1  # instance round 9 -> offset 8
        real = 4 * (t_first_ppush - 1) + 1
        pos = s.locate(real)
        assert pos.instance == 1
        assert pos.offset == s.ell
        assert pos.is_ppush

    def test_phase_wraps(self):
        s = make(upper_n=16, beta=2, gamma=2)
        plen = s.phase_len(1)  # 192 instance rounds
        real_of_t = lambda t: 4 * (t - 1) + 1
        pos = s.locate(real_of_t(plen))      # last round of phase 0
        assert pos.phase == 0
        assert s.is_bin_end(pos)
        pos = s.locate(real_of_t(plen + 1))  # first round of phase 1
        assert pos.phase == 1
        assert pos.is_phase_start

    def test_bin_walks(self):
        s = make(upper_n=16, beta=2, gamma=2)
        bin_len = s.blocks_per_bin * s.block_len  # 96
        real_of_t = lambda t: 4 * (t - 1) + 1
        assert s.locate(real_of_t(bin_len)).bin_index == 0
        assert s.locate(real_of_t(bin_len + 1)).bin_index == 1

    def test_spelling_end_detection(self):
        s = make()
        real_of_t = lambda t: 4 * (t - 1) + 1
        pos = s.locate(real_of_t(s.ell))  # offset ell-1
        assert s.is_spelling_end(pos)
        assert not s.is_bin_end(pos)


class TestTagBits:
    def test_roundtrip(self):
        s = make()
        for tag in (1, 17, 200, s.max_tag):
            bits = s.tag_bits(tag)
            assert len(bits) == s.ell
            value = 0
            for bit in bits:
                value = (value << 1) | bit
            assert value == tag

    def test_zero_spells_all_zeros(self):
        s = make()
        assert s.tag_bits(0) == [0] * s.ell

    def test_out_of_range_rejected(self):
        s = make()
        with pytest.raises(ConfigurationError):
            s.tag_bits(s.max_tag + 1)


class TestTargetInstance:
    def test_smallest_covering_instance(self):
        s = make(upper_n=16)
        assert s.target_instance_bound(1) == 1
        assert s.target_instance_bound(2) == 1
        assert s.target_instance_bound(3) == 2
        assert s.target_instance_bound(16) == 4

    def test_capped_at_num_instances(self):
        s = make(upper_n=16)
        assert s.target_instance_bound(100) == s.num_instances


@given(
    st.integers(min_value=1, max_value=200_000),
    st.integers(min_value=4, max_value=64),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=200, deadline=None)
def test_locate_consistency_property(real_round, upper_n, beta, gamma):
    """locate() agrees with instance_of_round and stays within bounds."""
    s = CrowdedBinSchedule(upper_n=upper_n, beta=beta, gamma=gamma)
    pos = s.locate(real_round)
    instance, t = s.instance_of_round(real_round)
    assert pos.instance == instance
    assert pos.instance_round == t
    assert 0 <= pos.bin_index < s.bins(instance)
    assert 0 <= pos.block < s.blocks_per_bin
    assert 0 <= pos.offset < s.block_len
    assert pos.is_spelling == (pos.offset < s.ell)
    # Reconstruct t from the decomposition.
    reconstructed = (
        pos.phase * s.phase_len(instance)
        + pos.bin_index * s.blocks_per_bin * s.block_len
        + pos.block * s.block_len
        + pos.offset
        + 1
    )
    assert reconstructed == t
