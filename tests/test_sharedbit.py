"""Tests for SharedBit: the advertisement hash (Lemma 5.2) and behavior."""

import random

import pytest

from repro.core.problem import uniform_instance
from repro.core.sharedbit import SharedBitConfig, SharedBitNode
from repro.core.tokens import Token
from repro.rng import SharedRandomness
from repro.sim.context import NeighborView

KEY = b"s" * 32


def make_node(uid, tokens=(), shared=None, upper_n=64, seed=0):
    return SharedBitNode(
        uid=uid,
        upper_n=upper_n,
        initial_tokens=tuple(Token(t) for t in tokens),
        rng=random.Random(seed),
        shared=shared or SharedRandomness(KEY, upper_n),
    )


class TestAdvertisementBit:
    def test_empty_set_advertises_zero(self):
        node = make_node(uid=1)
        for r in range(1, 20):
            assert node.advertise(r, ()) == 0

    def test_equal_sets_same_bit(self):
        """Lemma 5.2 part 1: identical token sets always produce equal bits."""
        shared = SharedRandomness(KEY, 64)
        a = make_node(uid=1, tokens=(3, 7, 20), shared=shared)
        b = make_node(uid=2, tokens=(3, 7, 20), shared=shared)
        for r in range(1, 60):
            assert a.advertise(r, ()) == b.advertise(r, ())

    def test_different_sets_differ_half_the_time(self):
        """Lemma 5.2 part 2: different sets disagree with probability 1/2."""
        shared = SharedRandomness(KEY, 64)
        a = make_node(uid=1, tokens=(3, 7), shared=shared)
        b = make_node(uid=2, tokens=(3, 9), shared=shared)
        rounds = 2000
        disagreements = sum(
            1 for r in range(1, rounds + 1)
            if a.advertisement_bit(r) != b.advertisement_bit(r)
        )
        # Binomial(2000, 1/2): ~6 sigma band.
        assert 860 < disagreements < 1140

    def test_superset_differs_half_the_time(self):
        shared = SharedRandomness(KEY, 64)
        a = make_node(uid=1, tokens=(3, 7), shared=shared)
        b = make_node(uid=2, tokens=(3, 7, 9), shared=shared)
        rounds = 2000
        disagreements = sum(
            1 for r in range(1, rounds + 1)
            if a.advertisement_bit(r) != b.advertisement_bit(r)
        )
        assert 860 < disagreements < 1140

    def test_bit_is_parity_of_token_bits(self):
        shared = SharedRandomness(KEY, 64)
        node = make_node(uid=1, tokens=(5, 11, 30), shared=shared)
        for r in (1, 13, 99):
            expected = (
                shared.token_bit(r, 5)
                ^ shared.token_bit(r, 11)
                ^ shared.token_bit(r, 30)
            )
            assert node.advertisement_bit(r) == expected


class TestProposalDiscipline:
    def test_zero_advertiser_never_proposes(self):
        node = make_node(uid=1)  # empty set -> bit 0
        node.advertise(1, (2,))
        views = (NeighborView(uid=2, tag=1), NeighborView(uid=3, tag=0))
        assert node.propose(1, views) is None

    def test_one_advertiser_targets_a_zero_neighbor(self):
        shared = SharedRandomness(KEY, 64)
        node = make_node(uid=1, tokens=(5,), shared=shared)
        # Find a round where this node advertises 1.
        r = next(r for r in range(1, 200) if node.advertisement_bit(r) == 1)
        node.advertise(r, (2, 3))
        views = (NeighborView(uid=2, tag=0), NeighborView(uid=3, tag=1))
        assert node.propose(r, views) == 2

    def test_one_advertiser_with_no_zero_neighbors_waits(self):
        shared = SharedRandomness(KEY, 64)
        node = make_node(uid=1, tokens=(5,), shared=shared)
        r = next(r for r in range(1, 200) if node.advertisement_bit(r) == 1)
        node.advertise(r, (2,))
        views = (NeighborView(uid=2, tag=1),)
        assert node.propose(r, views) is None

    def test_selection_uses_shared_bits(self):
        """Two nodes with the same uid/string pick the same target."""
        shared = SharedRandomness(KEY, 64)
        a = make_node(uid=1, tokens=(5,), shared=shared, seed=1)
        b = make_node(uid=1, tokens=(5,), shared=shared, seed=2)
        r = next(r for r in range(1, 200) if a.advertisement_bit(r) == 1)
        views = tuple(NeighborView(uid=u, tag=0) for u in (4, 9, 13))
        a.advertise(r, (4, 9, 13))
        b.advertise(r, (4, 9, 13))
        # Private seeds differ (1 vs 2) but the choice comes from the
        # shared string, so it is identical.
        assert a.propose(r, views) == b.propose(r, views)


class TestConfig:
    def test_presets(self):
        assert SharedBitConfig.paper().transfer_error_exponent == 2.0
        assert SharedBitConfig.practical().transfer_error_exponent == 1.0

    def test_epsilon_from_exponent(self):
        cfg = SharedBitConfig(transfer_error_exponent=2.0)
        assert cfg.transfer_epsilon(10) == pytest.approx(0.01)

    def test_group_offset_shifts_groups(self):
        shared = SharedRandomness(KEY, 64)
        plain = make_node(uid=1, tokens=(5,), shared=shared)
        offset = SharedBitNode(
            uid=1,
            upper_n=64,
            initial_tokens=(Token(5),),
            rng=random.Random(0),
            shared=shared,
            config=SharedBitConfig(group_offset=10),
        )
        assert offset.advertisement_bit(1) == plain.advertisement_bit(11)
