"""Tests for SimSharedBit: round interleaving, seeds, and end-to-end runs."""

import random

import pytest

from repro.commcplx.newman import SharedStringFamily
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.core.simsharedbit import SimSharedBitConfig, SimSharedBitNode
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import cycle, expander
from repro.leader.bitconvergence import LeaderConfig


def make_node(uid=1, tokens=(), seed=0, family=None, upper_n=16):
    family = family or SharedStringFamily(master_seed=9, capacity_n=upper_n)
    return SimSharedBitNode(
        uid=uid,
        upper_n=upper_n,
        initial_tokens=tuple(Token(t) for t in tokens),
        rng=random.Random(seed),
        family=family,
    )


class TestSeeds:
    def test_seed_sampled_from_family(self):
        family = SharedStringFamily(master_seed=9, capacity_n=16)
        node = make_node(family=family)
        assert 0 <= node.seed_index < family.family_size

    def test_seed_rides_election_payload(self):
        node = make_node()
        assert node.election.candidate_payload == node.seed_index

    def test_current_string_follows_candidate(self):
        family = SharedStringFamily(master_seed=9, capacity_n=16)
        node = make_node(family=family, seed=1)
        before = node.current_shared()
        assert before == family.string_for_seed(node.seed_index)
        # Simulate adopting a new leader with a different seed.
        other_seed = (node.seed_index + 1) % family.family_size
        node.election._adopt(0, other_seed)
        after = node.current_shared()
        assert after == family.string_for_seed(other_seed)
        assert after != before

    def test_family_must_fit_payload(self):
        family = SharedStringFamily(
            master_seed=9, capacity_n=16, family_size=2**70
        )
        with pytest.raises(ConfigurationError):
            SimSharedBitNode(
                uid=1,
                upper_n=16,
                initial_tokens=(),
                rng=random.Random(0),
                family=family,
                config=SimSharedBitConfig(
                    leader=LeaderConfig(payload_bits=8)
                ),
            )


class TestInterleaving:
    def test_even_rounds_are_election(self):
        assert SimSharedBitNode.is_election_round(2)
        assert SimSharedBitNode.is_election_round(100)
        assert not SimSharedBitNode.is_election_round(1)
        assert not SimSharedBitNode.is_election_round(99)

    def test_even_round_advertises_election_bit(self):
        node = make_node()
        # A fresh node has news: election bit 1 on even rounds.
        assert node.advertise(2, ()) == 1

    def test_odd_round_empty_set_advertises_zero(self):
        node = make_node()
        assert node.advertise(1, ()) == 0

    def test_odd_round_bit_matches_candidate_string(self):
        family = SharedStringFamily(master_seed=9, capacity_n=16)
        node = make_node(tokens=(5,), family=family)
        shared = family.string_for_seed(node.seed_index)
        for r in (1, 3, 5, 7, 9):
            assert node.advertise(r, ()) == shared.token_bit(r, 5)


class TestEndToEnd:
    def test_solves_on_static_cycle(self):
        inst = uniform_instance(n=10, k=2, seed=4)
        result = run_gossip(
            "simsharedbit",
            StaticDynamicGraph(cycle(10)),
            inst,
            seed=4,
            max_rounds=50_000,
        )
        assert result.solved
        assert result.residual_potential == 0

    def test_solves_on_fully_dynamic_expander(self):
        inst = uniform_instance(n=16, k=3, seed=5)
        result = run_gossip(
            "simsharedbit",
            RelabelingAdversary(expander(16, 4, seed=2), tau=1, seed=6),
            inst,
            seed=5,
            max_rounds=100_000,
        )
        assert result.solved

    def test_leader_converges_with_enough_rounds(self):
        """Gossip can finish before the interleaved election settles (a
        small instance needs few productive connections); the election
        itself must still converge to the minimum UID if we keep going."""
        from repro.sim.channel import ChannelPolicy
        from repro.sim.engine import Simulation
        from repro.sim.termination import all_agree_on_leader

        inst = uniform_instance(n=12, k=2, seed=8)
        dg = StaticDynamicGraph(expander(12, 4, seed=1))
        result = run_gossip(
            "simsharedbit", dg, inst, seed=8, max_rounds=50_000
        )
        assert result.solved
        sim = Simulation(
            dg, result.nodes, b=1, seed=123,
            channel_policy=ChannelPolicy.for_upper_n(inst.upper_n),
        )
        more = sim.run(max_rounds=20_000, termination=all_agree_on_leader())
        assert more.terminated
        leaders = {n.candidate_leader for n in result.nodes.values()}
        assert leaders == {min(inst.uids)}

    def test_after_convergence_all_nodes_share_one_string(self):
        """Post-convergence every node expands the same seed, so nodes with
        equal token sets advertise equal bits on every odd round — the
        SharedBit discipline (Lemma 5.2 part 1) restored without shared
        randomness."""
        from repro.sim.channel import ChannelPolicy
        from repro.sim.engine import Simulation
        from repro.sim.termination import all_agree_on_leader

        inst = uniform_instance(n=10, k=2, seed=4)
        dg = StaticDynamicGraph(cycle(10))
        result = run_gossip(
            "simsharedbit", dg, inst, seed=4, max_rounds=50_000
        )
        assert result.solved
        sim = Simulation(
            dg, result.nodes, b=1, seed=321,
            channel_policy=ChannelPolicy.for_upper_n(inst.upper_n),
        )
        more = sim.run(max_rounds=20_000, termination=all_agree_on_leader())
        assert more.terminated
        nodes = list(result.nodes.values())
        seeds = {n.election.candidate_payload for n in nodes}
        assert len(seeds) == 1
        # All token sets are equal now, so all odd-round bits agree.
        for r in (10_001, 10_003, 10_005):
            bits = {n.advertise(r, ()) for n in nodes}
            assert len(bits) == 1
