"""The observability layer: metrics, phase profiling, surfacing.

Three contracts under test (DESIGN.md §11):

* **Zero randomness / zero feedback** — enabling telemetry leaves
  every trace byte-identical (the differential axis lives in
  tests/test_fastpath.py; here we pin resolution semantics and that
  profiles surface without touching results).
* **Deterministic snapshots** — two registries fed the same events
  serialize to the same bytes, in canonical order, and the Prometheus
  rendering is a pure function of the snapshot.
* **Jobs-invariant profile merging** — ``merge_profiles`` is a
  commutative/associative fold, so ``SweepResult.phase_totals()``
  cannot depend on how the runs were partitioned across workers.
"""

import json

import pytest

from repro import Experiment
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.errors import ConfigurationError
from repro.experiments.runner import execute_run
from repro.experiments.specs import RunSpec
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander
from repro.net.trace import NetTrace
from repro.telemetry import (
    NULL_PROFILER,
    NULL_SINK,
    NULL_TELEMETRY,
    MetricsRegistry,
    PhaseProfiler,
    Telemetry,
    merge_profiles,
    prometheus_text,
    quantile,
    render_phase_table,
    resolve_telemetry,
)


class TestQuantile:
    def test_empty_is_none(self):
        assert quantile([], 0.5) is None

    def test_single_value(self):
        assert quantile([7.0], 0.99) == 7.0

    def test_linear_interpolation(self):
        values = [0.0, 10.0]
        assert quantile(values, 0.5) == 5.0
        assert quantile(values, 0.25) == 2.5

    def test_order_independent(self):
        assert quantile([3, 1, 2], 0.5) == quantile([1, 2, 3], 0.5) == 2.0


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("net.retries", uid=3).inc()
        registry.counter("net.retries", uid=3).inc(2)
        registry.gauge("engine.arena_bytes").set(4096)
        hist = registry.histogram("net.connect_latency_s")
        for value in (0.010, 0.020, 0.030):
            hist.observe(value)
        snap = {(e["kind"], e["name"]): e for e in registry.snapshot()}
        assert snap[("counter", "net.retries")]["value"] == 3
        assert snap[("counter", "net.retries")]["labels"] == {"uid": "3"}
        assert snap[("gauge", "engine.arena_bytes")]["value"] == 4096.0
        latency = snap[("histogram", "net.connect_latency_s")]["value"]
        assert latency["count"] == 3
        assert latency["min"] == 0.010 and latency["max"] == 0.030
        assert latency["p50"] == pytest.approx(0.020)

    def test_same_name_and_labels_share_one_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b", x=1) is registry.counter("a.b", x=1)
        assert registry.counter("a.b", x=1) is not registry.counter(
            "a.b", x=2
        )

    def test_snapshot_bytes_deterministic(self):
        def feed(registry):
            registry.gauge("z.last").set(1)
            registry.counter("a.first", role="peer").inc()
            registry.histogram("m.mid").observe(2.5)
            return registry

        first = feed(MetricsRegistry())
        second = feed(MetricsRegistry())
        assert first.to_json() == second.to_json()
        # Canonical order: (kind, name, labels), not insertion order.
        kinds = [entry["kind"] for entry in first.snapshot()]
        assert kinds == sorted(kinds)

    def test_prometheus_text_rendering(self):
        registry = MetricsRegistry()
        registry.counter("net.retries", uid=3).inc(2)
        registry.histogram("net.connect_latency_s").observe(0.5)
        text = prometheus_text(registry)
        assert 'net_retries{uid="3"} 2' in text
        assert "net_connect_latency_s_count 1" in text
        assert "net_connect_latency_s_sum 0.5" in text
        assert 'net_connect_latency_s{quantile="0.5"} 0.5' in text
        assert text.endswith("\n")
        assert prometheus_text(MetricsRegistry()) == ""

    def test_null_sink_is_free_and_empty(self):
        assert NULL_SINK.counter("x.y", uid=1) is NULL_SINK.gauge("z.w")
        NULL_SINK.counter("x.y").inc()
        NULL_SINK.histogram("h").observe(1.0)
        assert NULL_SINK.snapshot() == []
        assert NULL_SINK.to_json() == "[]"


class TestPhaseProfiler:
    def test_span_accumulates_calls_and_seconds(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.span("round.stages12"):
                pass
        profile = profiler.as_dict()
        assert profile["round.stages12"]["calls"] == 3
        assert profile["round.stages12"]["seconds"] >= 0.0

    def test_spans_are_cached_per_name(self):
        profiler = PhaseProfiler()
        assert profiler.span("a") is profiler.span("a")
        assert profiler.span("a") is not profiler.span("b")

    def test_null_profiler_shares_one_noop_span(self):
        assert NULL_PROFILER.span("a") is NULL_PROFILER.span("b")
        with NULL_PROFILER.span("a"):
            pass
        assert NULL_PROFILER.as_dict() == {}

    def test_stream_appends_one_json_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        profiler = PhaseProfiler(stream=path)
        with profiler.span("round.stage3"):
            pass
        with profiler.span("round.stage3"):
            pass
        profiler.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [line["span"] for line in lines] == ["round.stage3"] * 2
        assert [line["seq"] for line in lines] == [0, 1]

    def test_merge_profiles_commutative_and_none_tolerant(self):
        a = {"round.x": {"calls": 2, "seconds": 1.0}}
        b = {"round.x": {"calls": 1, "seconds": 0.5},
             "round.y": {"calls": 4, "seconds": 2.0}}
        merged = merge_profiles([a, None, b, {}])
        assert merged == merge_profiles([b, a, None])
        assert merged["round.x"] == {"calls": 3, "seconds": 1.5}
        assert merged["round.y"] == {"calls": 4, "seconds": 2.0}
        assert list(merged) == sorted(merged)

    def test_render_phase_table(self):
        table = render_phase_table(
            {"round.a": {"calls": 2, "seconds": 3.0},
             "round.b": {"calls": 1, "seconds": 1.0}}
        )
        lines = table.splitlines()
        assert "phase" in lines[0]
        assert lines[1].startswith("round.a")  # widest-seconds first
        assert "75.0%" in lines[1]
        assert render_phase_table({}) == "(no spans recorded)"


class TestResolveTelemetry:
    def test_defaults_to_the_null_bundle(self):
        assert resolve_telemetry(None) is NULL_TELEMETRY
        assert resolve_telemetry(False) is NULL_TELEMETRY
        assert resolve_telemetry({"enabled": False}) is NULL_TELEMETRY

    def test_enabled_forms(self):
        for spec in (True, "on", {"enabled": True}, {}):
            bundle = resolve_telemetry(spec)
            assert bundle.enabled and isinstance(bundle, Telemetry)

    def test_instances_pass_through(self):
        bundle = Telemetry()
        assert resolve_telemetry(bundle) is bundle
        assert resolve_telemetry(NULL_TELEMETRY) is NULL_TELEMETRY

    def test_unknown_keys_and_types_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_telemetry({"enabled": True, "sample_rate": 10})
        with pytest.raises(ConfigurationError):
            resolve_telemetry(3.5)


def _run(telemetry=None, **overrides):
    instance = uniform_instance(n=16, k=2, seed=5)
    kwargs = dict(max_rounds=30, engine_mode="array", telemetry=telemetry)
    kwargs.update(overrides)
    return run_gossip(
        "sharedbit", StaticDynamicGraph(expander(n=16, degree=4, seed=2)),
        instance, seed=5, **kwargs,
    )


class TestRunSurfacing:
    def test_run_gossip_profile_off_by_default(self):
        result = _run()
        assert result.telemetry is NULL_TELEMETRY
        assert result.profile is None

    def test_run_gossip_profile_on(self):
        result = _run(telemetry=True)
        profile = result.profile
        assert profile["run.total"]["calls"] == 1
        assert profile["round.stages12"]["calls"] == result.rounds
        assert "round.advertise" in profile
        # Observing the run never changes it.
        assert result.rounds == _run().rounds

    def test_run_spec_telemetry_block(self):
        payload = {
            "algorithm": "sharedbit",
            "graph": {"family": "expander",
                      "params": {"n": 16, "degree": 4, "seed": 2}},
            "instance": {"kind": "uniform", "k": 2},
            "max_rounds": 30,
            "seed": 5,
            "telemetry": {"enabled": True},
        }
        record = execute_run(payload)
        assert record["profile"]["round.stages12"]["calls"] > 0
        off = dict(payload, telemetry={"enabled": False})
        assert "profile" not in execute_run(off)

    def test_run_spec_rejects_unknown_telemetry_keys(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_payload({
                "algorithm": "sharedbit",
                "graph": {"family": "cycle", "params": {"n": 8}},
                "instance": {"kind": "uniform", "k": 1},
                "max_rounds": 10,
                "seed": 1,
                "telemetry": {"enabled": True, "bogus": 1},
            })

    def test_experiment_with_telemetry(self):
        experiment = (
            Experiment("sharedbit")
            .on_graph("expander", n=16, degree=4, seed=2)
            .with_instance("uniform", k=2)
            .seeded(5)
            .rounds(30)
            .with_telemetry()
        )
        assert experiment.run_spec().telemetry == {"enabled": True}
        record = experiment.run()
        assert record["profile"]["round.stages12"]["calls"] > 0
        reverted = experiment.with_telemetry(False)
        assert "profile" not in reverted.run()

    def test_sweep_phase_totals_merge_run_profiles(self):
        from repro.experiments import SweepSpec, run_sweep

        spec = SweepSpec(
            name="telemetry-totals",
            base={
                "algorithm": "sharedbit",
                "graph": {"family": "cycle", "params": {"n": 8}},
                "instance": {"kind": "uniform", "k": 1},
                "max_rounds": 20,
                "telemetry": {"enabled": True},
            },
            grid={"instance.k": [1, 2]},
            seeds=(11, 23),
        )
        result = run_sweep(spec)
        profiles = [record["profile"]
                    for summary in result.points
                    for record in summary.runs]
        assert len(profiles) == 4
        totals = result.phase_totals()
        assert totals == merge_profiles(profiles)
        assert totals["round.stages12"]["calls"] == sum(
            p["round.stages12"]["calls"] for p in profiles
        )
        # Wall seconds are not deterministic, so profiles must stay out
        # of the serialized result the jobs-identity gate compares.
        assert "profile" not in result.to_json()


class TestAsyncSkewParity:
    """SharedBit round parity under clock skew (DESIGN.md §7/§11).

    Heterogeneous rates push nodes' local cycles arbitrarily far
    apart; shared-PRF tag derivation is keyed by each member's own
    cycle, so the batched window drain must stay byte-identical to the
    per-event path — and the engines' internal round-parity assertions
    must stay quiet — even with skew far beyond one window.
    """

    def test_batched_matches_per_event_under_heterogeneous_skew(self):
        from repro.asynchrony.timing import HeterogeneousRates
        from repro.experiments.fastpath import run_case

        def timing():
            return HeterogeneousRates(n=24, seed=7, rates=(0.5, 1.0, 2.0))

        event = run_case("sharedbit", "static", "uniform", "object",
                         timing=timing(), async_mode="event")
        for engine_mode in ("object", "array"):
            batched = run_case("sharedbit", "static", "uniform",
                               engine_mode, timing=timing(),
                               async_mode="batched")
            assert event == batched, engine_mode

    def test_skew_exceeds_one_round_window(self):
        result = _run(
            telemetry=None,
            timing={"kind": "heterogeneous", "rates": (0.5, 1.0, 2.0)},
        )
        skews = result.trace.column_series("clock_skew_max")
        assert skews and max(value or 0 for _, value in skews) > 1


class TestNetTraceBoundaries:
    def test_rounds_per_second_none_on_boundaries(self):
        trace = NetTrace()
        assert trace.rounds_per_second() is None  # nothing recorded
        trace.close_round(1, proposals=1, connections=1, tokens_moved=0,
                          control_bits=0)
        assert trace.rounds_per_second() is None  # wall clock never set
        trace.wall_seconds = 2.0
        assert trace.rounds_per_second() == pytest.approx(0.5)

    def test_latency_stats_quantiles(self):
        trace = NetTrace()
        assert trace.latency_stats() is None
        for i, seconds in enumerate([0.010, 0.020, 0.030, 0.040]):
            trace.record_connection(i, seconds)
        stats = trace.latency_stats()
        assert stats["connections"] == 4
        assert stats["p50_s"] == pytest.approx(0.025)
        assert stats["p99_s"] == pytest.approx(0.0397)
        assert stats["max_s"] == 0.040
