"""Direct unit tests for the termination combinators and the Trace
column helpers (previously only exercised indirectly through engine
runs)."""

import pytest

from repro.sim.termination import (
    all_agree_on_leader,
    all_hold_tokens,
    any_of,
    never,
)
from repro.sim.trace import RoundRecord, Trace


class _FakeNode:
    def __init__(self, tokens=(), leader=None):
        self.known_tokens = frozenset(tokens)
        self.candidate_leader = leader


class TestNever:
    def test_always_false(self):
        check = never()
        assert check({}, 1) is False
        assert check({0: _FakeNode()}, 10_000) is False


class TestAllHoldTokens:
    def test_fires_only_when_every_node_has_every_token(self):
        check = all_hold_tokens({1, 2})
        nodes = {0: _FakeNode({1, 2}), 1: _FakeNode({1})}
        assert not check(nodes, 5)
        nodes[1].known_tokens = frozenset({1, 2})
        assert check(nodes, 6)

    def test_extra_tokens_do_not_block(self):
        check = all_hold_tokens({1})
        assert check({0: _FakeNode({1, 7, 9})}, 1)

    def test_empty_wanted_set_fires_immediately(self):
        assert all_hold_tokens(())({0: _FakeNode()}, 1)


class TestAllAgreeOnLeader:
    def test_agreement_fires(self):
        nodes = {v: _FakeNode(leader=3) for v in range(4)}
        assert all_agree_on_leader()(nodes, 1)

    def test_disagreement_blocks(self):
        nodes = {0: _FakeNode(leader=3), 1: _FakeNode(leader=4)}
        assert not all_agree_on_leader()(nodes, 1)

    def test_agreement_on_none_counts(self):
        # "Everyone undecided" is agreement at an instant — the
        # stabilization guarantee is checked elsewhere (test_leader).
        nodes = {v: _FakeNode(leader=None) for v in range(3)}
        assert all_agree_on_leader()(nodes, 1)


class TestAnyOf:
    def test_empty_is_never(self):
        assert not any_of()({}, 1)

    def test_any_constituent_fires(self):
        fired = any_of(never(), all_hold_tokens({1}))
        assert fired({0: _FakeNode({1})}, 1)
        assert not fired({0: _FakeNode()}, 1)

    def test_short_circuits_left_to_right(self):
        calls = []

        def tracker(value):
            def check(nodes, round_index):
                calls.append(value)
                return value
            return check

        assert any_of(tracker(True), tracker(False))({}, 1)
        assert calls == [True]  # the second condition never ran

    def test_composes_with_leader_and_tokens(self):
        either = any_of(all_hold_tokens({1, 2}), all_agree_on_leader())
        nodes = {0: _FakeNode({1}, leader=5), 1: _FakeNode({2}, leader=5)}
        assert either(nodes, 1)  # leaders agree even though tokens short


def _record(round_index, **overrides):
    fields = dict(
        round_index=round_index, proposals=4, connections=2,
        tokens_moved=1, control_bits=8,
    )
    fields.update(overrides)
    return RoundRecord(**fields)


class TestTraceColumns:
    def test_column_series_reads_any_record_field(self):
        trace = Trace()
        trace.record(_record(1, active_nodes=7, dropped_connections=1))
        trace.record(_record(2, active_nodes=5, dropped_connections=0))
        assert trace.column_series("active_nodes") == [(1, 7), (2, 5)]
        assert trace.column_series("dropped_connections") == [
            (1, 1), (2, 0),
        ]

    def test_column_series_covers_async_columns(self):
        trace = Trace()
        trace.record(_record(1, virtual_time=1.25, clock_skew_max=3,
                             events=11))
        assert trace.column_series("virtual_time") == [(1, 1.25)]
        assert trace.column_series("clock_skew_max") == [(1, 3)]
        assert trace.column_series("events") == [(1, 11)]

    def test_column_series_unknown_field_raises(self):
        trace = Trace()
        trace.record(_record(1))
        with pytest.raises(AttributeError):
            trace.column_series("nope")

    def test_column_series_respects_sampling(self):
        trace = Trace(sample_every=2)
        for rnd in range(1, 6):
            trace.record(_record(rnd, active_nodes=rnd))
        # round 1 always kept, then every second round
        assert [rnd for rnd, _ in trace.column_series("active_nodes")] \
            == [1, 2, 4]

    def test_total_dropped_connections_exact_under_sampling(self):
        trace = Trace(sample_every=4)
        for rnd in range(1, 9):
            trace.record(_record(rnd, dropped_connections=2))
        # Totals are exact even though most records were not kept.
        assert trace.total_dropped_connections == 16
        assert len(trace.records) == 3  # rounds 1, 4, 8

    def test_observe_light_path_counts_drops(self):
        trace = Trace()
        trace.observe(1, proposals=3, connections=1, tokens_moved=0,
                      control_bits=4, dropped_connections=5)
        assert trace.total_dropped_connections == 5
        assert trace.total_rounds == 1
        assert trace.records == []
