"""Tests for the topology generators: shape, connectivity, known facts."""

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.graphs.topologies import (
    TOPOLOGY_FAMILIES,
    barbell,
    binary_tree,
    complete,
    cycle,
    double_star,
    erdos_renyi,
    expander,
    grid,
    hypercube,
    lollipop,
    path,
    random_regular,
    star,
)


def _all_samples():
    return [
        star(9),
        double_star(5),
        path(8),
        cycle(9),
        complete(7),
        hypercube(4),
        random_regular(12, 3, seed=1),
        erdos_renyi(14, 0.4, seed=2),
        grid(3, 5),
        barbell(4, 2),
        lollipop(4, 3),
        binary_tree(3),
        expander(12, degree=4, seed=0),
    ]


class TestCommonInvariants:
    @pytest.mark.parametrize("topo", _all_samples(), ids=lambda t: t.name)
    def test_connected(self, topo):
        assert nx.is_connected(topo.graph)

    @pytest.mark.parametrize("topo", _all_samples(), ids=lambda t: t.name)
    def test_vertices_are_zero_to_n(self, topo):
        assert sorted(topo.graph.nodes) == list(range(topo.n))

    @pytest.mark.parametrize("topo", _all_samples(), ids=lambda t: t.name)
    def test_max_degree_matches_graph(self, topo):
        assert topo.max_degree == max(d for _, d in topo.graph.degree)

    @pytest.mark.parametrize("topo", _all_samples(), ids=lambda t: t.name)
    def test_diameter_hint_correct_when_given(self, topo):
        if topo.diameter_hint is not None:
            assert nx.diameter(topo.graph) == topo.diameter_hint


class TestStar:
    def test_shape(self):
        topo = star(6)
        assert topo.n == 6
        assert topo.max_degree == 5
        assert topo.graph.degree(0) == 5

    def test_alpha_closed_form(self):
        assert star(8).alpha == pytest.approx(1 / 4)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            star(2)


class TestDoubleStar:
    def test_shape(self):
        topo = double_star(4)
        assert topo.n == 10
        assert topo.max_degree == 5  # hub: 4 leaves + other hub
        assert topo.graph.has_edge(0, 1)

    def test_hub_degrees(self):
        topo = double_star(6)
        assert topo.graph.degree(0) == 7
        assert topo.graph.degree(1) == 7
        leaves = [v for v in topo.graph.nodes if v > 1]
        assert all(topo.graph.degree(v) == 1 for v in leaves)

    def test_alpha_closed_form(self):
        topo = double_star(5)
        # One whole star (hub + 5 leaves = 6 nodes, exactly half) has
        # boundary {other hub}.
        assert topo.alpha == pytest.approx(1 / 6)

    def test_rejects_zero_points(self):
        with pytest.raises(ConfigurationError):
            double_star(0)


class TestCompleteAndCycle:
    def test_complete_alpha_even(self):
        assert complete(8).alpha == pytest.approx(1.0)

    def test_complete_alpha_odd(self):
        assert complete(7).alpha == pytest.approx(4 / 3)

    def test_cycle_alpha(self):
        assert cycle(10).alpha == pytest.approx(2 / 5)

    def test_path_alpha(self):
        assert path(10).alpha == pytest.approx(1 / 5)


class TestRandomFamilies:
    def test_regular_degrees(self):
        topo = random_regular(16, 4, seed=3)
        assert all(d == 4 for _, d in topo.graph.degree)

    def test_regular_parity_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular(7, 3, seed=0)

    def test_regular_determinism(self):
        a = random_regular(16, 4, seed=3)
        b = random_regular(16, 4, seed=3)
        assert set(a.graph.edges) == set(b.graph.edges)

    def test_erdos_renyi_needs_valid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(10, 0.0, seed=0)

    def test_expander_is_regular(self):
        topo = expander(12, degree=4, seed=1)
        assert all(d == 4 for _, d in topo.graph.degree)


class TestStructured:
    def test_hypercube_size_and_degree(self):
        topo = hypercube(4)
        assert topo.n == 16
        assert topo.max_degree == 4

    def test_grid_size(self):
        topo = grid(3, 4)
        assert topo.n == 12
        assert topo.max_degree == 4

    def test_binary_tree_size(self):
        assert binary_tree(3).n == 15

    def test_barbell_size(self):
        assert barbell(4, 2).n == 10

    def test_lollipop_size(self):
        assert lollipop(5, 3).n == 8


class TestFamilyRegistry:
    def test_registry_covers_all_generators(self):
        assert set(TOPOLOGY_FAMILIES) == {
            "star", "double_star", "path", "cycle", "complete", "hypercube",
            "random_regular", "erdos_renyi", "grid", "barbell", "lollipop",
            "binary_tree", "expander", "ring_expander",
        }
