"""Tests for Transfer(ε): correctness, direction, and bit budget."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import ceil_log2
from repro.commcplx.transfer import TransferProtocol, trials_for_error
from repro.errors import ConfigurationError
from repro.sim.channel import Channel, ChannelPolicy


def make_protocol(upper_n=64, epsilon=1e-3):
    return TransferProtocol(upper_n=upper_n, epsilon=epsilon)


class TestTrialsForError:
    def test_tighter_epsilon_needs_more_trials(self):
        assert trials_for_error(64, 1e-6) > trials_for_error(64, 0.4)

    def test_minimum_one(self):
        assert trials_for_error(4, 0.9) >= 1

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            trials_for_error(64, 0.0)
        with pytest.raises(ConfigurationError):
            trials_for_error(64, 1.0)


class TestLocateCorrectness:
    def test_finds_smallest_difference(self):
        proto = make_protocol()
        rng = random.Random(0)
        outcome = proto.locate({3, 10, 20}, {10, 20, 40}, rng)
        assert outcome.token_id == 3
        assert outcome.moved_to_b  # a owns 3, so it moves a -> b
        assert outcome.consistent

    def test_direction_b_to_a(self):
        proto = make_protocol()
        outcome = proto.locate({10}, {5, 10}, random.Random(1))
        assert outcome.token_id == 5
        assert outcome.moved_to_a

    def test_equal_sets_no_transfer(self):
        proto = make_protocol()
        outcome = proto.locate({4, 9}, {4, 9}, random.Random(2))
        assert outcome.token_id is None
        assert not outcome.moved
        assert not outcome.consistent

    def test_empty_vs_nonempty(self):
        proto = make_protocol()
        outcome = proto.locate(set(), {7, 30}, random.Random(3))
        assert outcome.token_id == 7
        assert outcome.moved_to_a

    def test_both_empty(self):
        proto = make_protocol()
        outcome = proto.locate(set(), set(), random.Random(4))
        assert outcome.token_id is None
        assert not outcome.moved

    def test_difference_at_universe_edge(self):
        proto = make_protocol(upper_n=64)
        outcome = proto.locate({64}, set(), random.Random(5))
        assert outcome.token_id == 64
        assert outcome.moved_to_b

    def test_difference_at_one(self):
        proto = make_protocol(upper_n=64)
        outcome = proto.locate({1}, set(), random.Random(6))
        assert outcome.token_id == 1

    def test_smallest_of_many_differences(self):
        proto = make_protocol(upper_n=128)
        a = {2, 4, 6, 100}
        b = {2, 5, 7, 128}
        # Symmetric difference {4, 5, 6, 7, 100, 128}; smallest is 4.
        outcome = proto.locate(a, b, random.Random(7))
        assert outcome.token_id == 4


class TestBudget:
    def test_control_bits_within_worst_case(self):
        proto = make_protocol(upper_n=256, epsilon=1e-4)
        rng = random.Random(0)
        for _ in range(20):
            a = set(rng.sample(range(1, 257), 30))
            b = set(rng.sample(range(1, 257), 30))
            outcome = proto.locate(a, b, rng)
            assert outcome.control_bits <= proto.worst_case_control_bits()

    def test_worst_case_is_polylog(self):
        small = make_protocol(upper_n=2**6).worst_case_control_bits()
        large = make_protocol(upper_n=2**12).worst_case_control_bits()
        # Doubling log N should grow the bound by ~2^2-ish, far below the
        # 2^6 factor a linear dependence on N would give.
        assert large < 8 * small

    def test_channel_charged_and_token_counted(self):
        proto = make_protocol(upper_n=32)
        channel = Channel(1, 1, 2, ChannelPolicy(max_control_bits=10**6))
        outcome = proto.locate({5}, {9}, random.Random(0), channel=channel)
        assert outcome.moved
        assert channel.tokens_moved == 1
        assert channel.bits.total_bits == outcome.control_bits

    def test_eq_calls_bounded_by_log_n(self):
        proto = make_protocol(upper_n=256)
        outcome = proto.locate({17}, {200}, random.Random(0))
        assert outcome.eq_calls <= ceil_log2(256)


class TestValidation:
    def test_rejects_labels_outside_universe(self):
        proto = make_protocol(upper_n=16)
        with pytest.raises(ConfigurationError):
            proto.locate({17}, set(), random.Random(0))
        with pytest.raises(ConfigurationError):
            proto.locate(set(), {0}, random.Random(0))


@given(
    st.sets(st.integers(min_value=1, max_value=64), max_size=20),
    st.sets(st.integers(min_value=1, max_value=64), max_size=20),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=150, deadline=None)
def test_transfer_property(a, b, seed):
    """With tight epsilon, Transfer finds min(symdiff) and moves it right."""
    proto = TransferProtocol(upper_n=64, epsilon=1e-6)
    outcome = proto.locate(a, b, random.Random(seed))
    sym = (a | b) - (a & b)
    if not sym:
        assert outcome.token_id is None
        assert not outcome.moved
    else:
        # epsilon 1e-6 over <=500 runs: treat failure as test failure.
        expected = min(sym)
        assert outcome.token_id == expected
        assert outcome.consistent
        if expected in a:
            assert outcome.moved_to_b
        else:
            assert outcome.moved_to_a
