"""Tests for the motivating workload scenarios."""

import networkx as nx
import pytest

from repro.core.runner import run_gossip
from repro.sim.faults import CrashChurn, LossyLinks, SleepCycle
from repro.workloads.scenarios import (
    SCENARIOS,
    disaster_scenario,
    festival_nightfall_scenario,
    festival_scenario,
    protest_lossy_scenario,
    protest_scenario,
    rural_mesh_scenario,
    subway_scenario,
)


class TestScenarioShapes:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_instance_matches_graph(self, name):
        scenario = SCENARIOS[name](seed=1)
        assert scenario.dynamic_graph.n == scenario.instance.n
        assert scenario.recommended_algorithm in (
            "blindmatch", "sharedbit", "simsharedbit", "crowdedbin",
        )

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_topologies_connected(self, name):
        scenario = SCENARIOS[name](seed=1)
        for r in (1, 5, 9):
            assert nx.is_connected(scenario.dynamic_graph.graph_at(r))

    def test_protest_is_dynamic(self):
        scenario = protest_scenario(seed=2)
        assert scenario.dynamic_graph.tau != float("inf")

    def test_festival_is_stable(self):
        scenario = festival_scenario(seed=2)
        assert scenario.dynamic_graph.tau == float("inf")

    def test_disaster_single_holder(self):
        scenario = disaster_scenario(seed=2)
        assert len(scenario.instance.initial_tokens) == 1
        assert scenario.instance.k == 3

    def test_clean_scenarios_have_no_fault(self):
        for factory in (protest_scenario, festival_scenario,
                        disaster_scenario, rural_mesh_scenario):
            assert factory(seed=1).fault is None

    def test_faulty_scenarios_carry_their_regime(self):
        assert isinstance(subway_scenario(seed=1).fault, CrashChurn)
        assert isinstance(protest_lossy_scenario(seed=1).fault, LossyLinks)
        assert isinstance(
            festival_nightfall_scenario(seed=1).fault, SleepCycle
        )

    def test_faulty_variants_share_clean_shapes(self):
        clean = protest_scenario(n=24, k=3, seed=7)
        lossy = protest_lossy_scenario(n=24, k=3, seed=7)
        assert lossy.instance.initial_tokens == clean.instance.initial_tokens
        assert lossy.dynamic_graph.n == clean.dynamic_graph.n


class TestScenarioRuns:
    def test_festival_crowdedbin_solves(self):
        scenario = festival_scenario(n=24, k=3, seed=3)
        from repro.core.crowdedbin import CrowdedBinConfig

        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=3,
            max_rounds=300_000,
            config=CrowdedBinConfig.practical(),
            termination_every=16,
            trace_sample_every=256,
        )
        assert result.solved

    def test_protest_simsharedbit_solves(self):
        scenario = protest_scenario(n=20, k=3, seed=4)
        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=4,
            max_rounds=60_000,
        )
        assert result.solved

    def test_disaster_sharedbit_solves(self):
        scenario = disaster_scenario(n=24, seed=5)
        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=5,
            max_rounds=60_000,
        )
        assert result.solved

    def test_rural_mesh_solves(self):
        scenario = rural_mesh_scenario(n=20, k=3, seed=6)
        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=6,
            max_rounds=60_000,
        )
        assert result.solved

    def test_subway_solves_under_churn(self):
        scenario = subway_scenario(n=20, k=3, seed=7)
        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=7,
            max_rounds=60_000,
            fault=scenario.fault,
        )
        assert result.solved

    def test_protest_lossy_solves_and_drops(self):
        scenario = protest_lossy_scenario(n=20, k=3, seed=8)
        result = run_gossip(
            scenario.recommended_algorithm,
            scenario.dynamic_graph,
            scenario.instance,
            seed=8,
            max_rounds=60_000,
            fault=scenario.fault,
        )
        assert result.solved
        assert result.trace.total_dropped_connections > 0

    def test_festival_nightfall_slower_than_clean_festival(self):
        # The same mesh and sources, radios duty-cycled: gossip still
        # completes, but no faster than the always-awake festival.
        night = festival_nightfall_scenario(n=24, k=3, seed=9)
        clean = festival_scenario(n=24, k=3, seed=9)
        faulty_run = run_gossip(
            "sharedbit", night.dynamic_graph, night.instance, seed=9,
            max_rounds=60_000, fault=night.fault,
        )
        clean_run = run_gossip(
            "sharedbit", clean.dynamic_graph, clean.instance, seed=9,
            max_rounds=60_000,
        )
        assert faulty_run.solved and clean_run.solved
        assert faulty_run.rounds >= clean_run.rounds
